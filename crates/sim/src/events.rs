//! A deterministic discrete-event simulator for **live churn**: node
//! sessions arrive and depart in continuous time while lookup traffic runs
//! concurrently over the (optionally self-repairing) overlay.
//!
//! The paper's churn model is a sequence of *static snapshots* — the
//! [`crate::churn`] module freezes the routing tables and only moves the
//! failure mask between rounds. This module lifts that restriction: a
//! calendar-queue scheduler drives per-node alternating-renewal sessions
//! (up for a [`LifetimeDistribution`] draw, down for a downtime draw) and,
//! in repair mode, every departure and return is *delta-patched* into the
//! [`LiveOverlay`] — arena rows rewritten in place and kernel plan ranks
//! re-lowered, exactly the incremental repair proven equivalent to a full
//! rebuild by the `incremental_equivalence` property suite in `dht-overlay`.
//!
//! In frozen mode the failure pattern only moves on churn events, so the
//! Poisson lookups that arrive between two consecutive events all observe
//! the same aliveness words. The engine exploits this: lookups are drawn at
//! event time (the RNG streams are untouched) but queued, and each queue is
//! drained through the routing kernel's lockstep [`RouteBatch`] pass right
//! before the next liveness mutation — identical outcomes, recorded in draw
//! order, in one cache-friendly sweep per inter-event gap.
//!
//! # Determinism
//!
//! The engine is sharded by **replica** in the same mold as
//! [`crate::TrialEngine`]: each replica owns a [`SeedSequence`]-derived
//! stream family (overlay construction, lookup traffic, and one stream per
//! node session), replicas are merged in replica order regardless of how
//! they were scheduled onto worker threads, and every tie in the event
//! calendar is broken by a monotone insertion sequence number. The merged
//! [`LiveChurnTally`] — including the folded overlay state digests — is
//! therefore bit-identical for any thread count.

use crate::config::SimError;
use crate::rng::{splitmix64, SeedSequence};
use dht_mathkit::RunningStats;
use dht_overlay::{
    default_route_hop_limit, GeometryStrategy, LiveOverlay, Overlay, RouteBatch, RouteOutcome,
};
use rand::Rng;
use serde::Serialize;
use std::collections::BTreeMap;

/// Initial value of the state-digest fold (the FNV-1a offset basis, shared
/// with `LiveOverlay::state_digest`).
const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// A calendar queue: a bucketed priority queue for discrete-event
/// simulation, ordered by `(time, insertion sequence)`.
///
/// Events are hashed into fixed-width time buckets kept in a [`BTreeMap`];
/// the earliest event always lives in the first non-empty bucket, so a pop
/// is a linear scan of one bucket rather than of the whole calendar. The
/// monotone insertion sequence makes simultaneous events pop in insertion
/// order — a deterministic total order with no dependence on allocation or
/// iteration quirks.
///
/// # Example
///
/// ```rust
/// use dht_sim::CalendarQueue;
///
/// let mut queue = CalendarQueue::new(1.0);
/// queue.push(2.5, "late");
/// queue.push(0.5, "early");
/// queue.push(2.5, "late, but after");
/// assert_eq!(queue.pop(), Some((0.5, "early")));
/// assert_eq!(queue.pop(), Some((2.5, "late")));
/// assert_eq!(queue.pop(), Some((2.5, "late, but after")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    buckets: BTreeMap<u64, Vec<(f64, u64, T)>>,
    width: f64,
    next_seq: u64,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// Creates an empty calendar with the given bucket width (simulated
    /// time units per bucket).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not finite and positive.
    #[must_use]
    pub fn new(bucket_width: f64) -> Self {
        assert!(
            bucket_width.is_finite() && bucket_width > 0.0,
            "bucket width must be finite and positive"
        );
        CalendarQueue {
            buckets: BTreeMap::new(),
            width: bucket_width,
            next_seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is negative or not finite — the simulated clock
    /// never runs backwards past zero and NaN would poison the ordering.
    pub fn push(&mut self, time: f64, payload: T) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and non-negative"
        );
        let bucket = (time / self.width) as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buckets
            .entry(bucket)
            .or_default()
            .push((time, seq, payload));
        self.len += 1;
    }

    /// Removes and returns the earliest event, ties broken by insertion
    /// order.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let bucket = *self.buckets.keys().next()?;
        let entries = self
            .buckets
            .get_mut(&bucket)
            .expect("first bucket key exists");
        let mut best = 0;
        for index in 1..entries.len() {
            if (entries[index].0, entries[index].1) < (entries[best].0, entries[best].1) {
                best = index;
            }
        }
        let (time, _, payload) = entries.swap_remove(best);
        if entries.is_empty() {
            self.buckets.remove(&bucket);
        }
        self.len -= 1;
        Some((time, payload))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the calendar is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A session-length (or downtime) distribution for the churn model.
///
/// The paper's Poisson-churn analysis corresponds to
/// [`LifetimeDistribution::Exponential`] sessions; the heavy-tailed
/// [`LifetimeDistribution::Pareto`] variant models the empirical observation
/// that peer session times have power-law tails (a small core of long-lived
/// nodes carries most of the uptime).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum LifetimeDistribution {
    /// Memoryless sessions with the given mean (rate `1/mean`).
    Exponential {
        /// Mean session length in simulated time units.
        mean: f64,
    },
    /// Pareto(shape, scale) sessions: survival `(scale/t)^shape` for
    /// `t >= scale`. The shape must exceed 1 so the mean — and with it the
    /// stationary availability — exists.
    Pareto {
        /// Tail exponent (`> 1`).
        shape: f64,
        /// Minimum session length (`> 0`).
        scale: f64,
    },
}

impl LifetimeDistribution {
    /// An exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfiguration`] unless `mean` is finite
    /// and positive.
    pub fn exponential(mean: f64) -> Result<Self, SimError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(SimError::InvalidConfiguration {
                message: format!("exponential mean must be finite and positive, got {mean}"),
            });
        }
        Ok(LifetimeDistribution::Exponential { mean })
    }

    /// A Pareto distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfiguration`] unless `shape > 1` (the
    /// mean must exist) and `scale > 0`, both finite.
    pub fn pareto(shape: f64, scale: f64) -> Result<Self, SimError> {
        if !shape.is_finite() || shape <= 1.0 {
            return Err(SimError::InvalidConfiguration {
                message: format!("pareto shape must be finite and exceed 1, got {shape}"),
            });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(SimError::InvalidConfiguration {
                message: format!("pareto scale must be finite and positive, got {scale}"),
            });
        }
        Ok(LifetimeDistribution::Pareto { shape, scale })
    }

    /// The distribution mean — the `L` (or `D`) entering the stationary
    /// availability `L / (L + D)` of an alternating-renewal session.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LifetimeDistribution::Exponential { mean } => mean,
            LifetimeDistribution::Pareto { shape, scale } => shape * scale / (shape - 1.0),
        }
    }

    /// Draws one session length by inversion of the CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // `gen::<f64>()` is uniform on [0, 1), so `1 - u` is in (0, 1] and
        // both inversions below are finite.
        let u: f64 = rng.gen();
        match *self {
            LifetimeDistribution::Exponential { mean } => -mean * (1.0 - u).ln(),
            LifetimeDistribution::Pareto { shape, scale } => scale * (1.0 - u).powf(-1.0 / shape),
        }
    }
}

/// Configuration for a live-churn run: the session process, the lookup
/// load, and the engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LiveChurnConfig {
    lifetime: LifetimeDistribution,
    downtime: LifetimeDistribution,
    duration: f64,
    warmup: f64,
    lookup_rate: f64,
    repair: bool,
    replicas: u32,
    threads: usize,
    seed: u64,
}

impl LiveChurnConfig {
    /// Creates a configuration: sessions drawn from `lifetime`, offline
    /// periods from `downtime`, observed for `duration` time units with
    /// lookups arriving as a Poisson process of rate `lookup_rate` (per
    /// time unit, zero for a churn-only run).
    ///
    /// Defaults: no warmup, frozen tables (no repair), one replica, one
    /// thread, seed 0.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfiguration`] unless `duration` is
    /// finite and positive and `lookup_rate` is finite and non-negative.
    pub fn new(
        lifetime: LifetimeDistribution,
        downtime: LifetimeDistribution,
        duration: f64,
        lookup_rate: f64,
    ) -> Result<Self, SimError> {
        if !duration.is_finite() || duration <= 0.0 {
            return Err(SimError::InvalidConfiguration {
                message: format!("duration must be finite and positive, got {duration}"),
            });
        }
        if !lookup_rate.is_finite() || lookup_rate < 0.0 {
            return Err(SimError::InvalidConfiguration {
                message: format!("lookup rate must be finite and non-negative, got {lookup_rate}"),
            });
        }
        Ok(LiveChurnConfig {
            lifetime,
            downtime,
            duration,
            warmup: 0.0,
            lookup_rate,
            repair: false,
            replicas: 1,
            threads: 1,
            seed: 0,
        })
    }

    /// Discards measurements before `warmup` (clamped to
    /// `[0, duration]`) so tallies sample the stationary regime rather
    /// than the all-alive initial transient.
    #[must_use]
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup.clamp(0.0, self.duration);
        self
    }

    /// Selects repair mode: when `true` every departure and return
    /// delta-patches the overlay in place; when `false` tables stay frozen
    /// at the all-alive build and only the liveness mask moves (the
    /// paper's static snapshot model, evaluated in continuous time).
    #[must_use]
    pub fn with_repair(mut self, repair: bool) -> Self {
        self.repair = repair;
        self
    }

    /// Number of independent replicas to average over (at least 1).
    #[must_use]
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Worker-thread budget; replicas are the unit of parallelism and the
    /// merged tally does not depend on this.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, 256);
        self
    }

    /// Master seed; all replica stream families derive from it.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The session-length distribution.
    #[must_use]
    pub fn lifetime(&self) -> LifetimeDistribution {
        self.lifetime
    }

    /// The offline-period distribution.
    #[must_use]
    pub fn downtime(&self) -> LifetimeDistribution {
        self.downtime
    }

    /// Total simulated time per replica.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Measurement-window start.
    #[must_use]
    pub fn warmup(&self) -> f64 {
        self.warmup
    }

    /// Poisson lookup arrival rate per time unit.
    #[must_use]
    pub fn lookup_rate(&self) -> f64 {
        self.lookup_rate
    }

    /// Whether departures and returns repair the overlay in place.
    #[must_use]
    pub fn repair(&self) -> bool {
        self.repair
    }

    /// Number of replicas.
    #[must_use]
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Worker-thread budget.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stationary probability that a node is offline,
    /// `q* = E[D] / (E[L] + E[D])` — the renewal-theoretic equivalent of
    /// the paper's static failure fraction `q`, which is what lets a
    /// frozen-table live-churn run be validated against the Markov-chain
    /// prediction at `q*`.
    #[must_use]
    pub fn stationary_failure_fraction(&self) -> f64 {
        let up = self.lifetime.mean();
        let down = self.downtime.mean();
        down / (up + down)
    }
}

/// Aggregated results of a live-churn run.
///
/// Merging is associative and performed in replica order, so the tally —
/// including [`LiveChurnTally::state_digest`] — is bit-identical for any
/// thread count.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LiveChurnTally {
    /// Replicas merged into this tally.
    pub replicas: u32,
    /// Total events processed (departures, returns and lookups, warmup
    /// included).
    pub events: u64,
    /// Session departures processed.
    pub leaves: u64,
    /// Session returns processed.
    pub joins: u64,
    /// Routing-table rows actually rewritten by incremental repair (zero
    /// in frozen mode).
    pub repairs: u64,
    /// Lookups attempted inside the measurement window.
    pub attempted: u64,
    /// Lookups delivered.
    pub delivered: u64,
    /// Lookups dropped (no alive neighbour made progress, or an endpoint
    /// was offline at arrival).
    pub dropped: u64,
    /// Lookups that exceeded the hop limit.
    pub hop_limited: u64,
    /// Lookups skipped because fewer than two nodes were alive.
    pub skipped: u64,
    /// Hop-count statistics over delivered lookups.
    pub hop_stats: RunningStats,
    /// Integral of the offline-node count over the measurement window
    /// (node·time units).
    pub dead_node_time: f64,
    /// Window length times population size — the normaliser for
    /// [`LiveChurnTally::dead_fraction`].
    pub window_node_time: f64,
    /// Fold of every replica's final overlay state digest, in replica
    /// order — two runs agree on the full end state iff these agree.
    pub state_digest: u64,
}

impl Default for LiveChurnTally {
    fn default() -> Self {
        LiveChurnTally {
            replicas: 0,
            events: 0,
            leaves: 0,
            joins: 0,
            repairs: 0,
            attempted: 0,
            delivered: 0,
            dropped: 0,
            hop_limited: 0,
            skipped: 0,
            hop_stats: RunningStats::new(),
            dead_node_time: 0.0,
            window_node_time: 0.0,
            state_digest: DIGEST_SEED,
        }
    }
}

impl LiveChurnTally {
    /// Records one lookup outcome.
    fn record(&mut self, outcome: RouteOutcome) {
        self.attempted += 1;
        match outcome {
            RouteOutcome::Delivered { hops } => {
                self.delivered += 1;
                self.hop_stats.push(f64::from(hops));
            }
            RouteOutcome::Dropped { .. }
            | RouteOutcome::SourceFailed
            | RouteOutcome::TargetFailed => self.dropped += 1,
            RouteOutcome::HopLimitExceeded { .. } => self.hop_limited += 1,
        }
    }

    /// Folds `other` into `self`; replica order must be preserved by the
    /// caller for digest stability.
    pub fn merge(&mut self, other: &LiveChurnTally) {
        self.replicas += other.replicas;
        self.events += other.events;
        self.leaves += other.leaves;
        self.joins += other.joins;
        self.repairs += other.repairs;
        self.attempted += other.attempted;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.hop_limited += other.hop_limited;
        self.skipped += other.skipped;
        self.hop_stats.merge(&other.hop_stats);
        self.dead_node_time += other.dead_node_time;
        self.window_node_time += other.window_node_time;
        self.state_digest = splitmix64(self.state_digest ^ other.state_digest);
    }

    /// Delivered fraction of attempted lookups, 0 when none were
    /// attempted.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }

    /// Time-averaged offline fraction over the measurement window — the
    /// empirical counterpart of
    /// [`LiveChurnConfig::stationary_failure_fraction`].
    #[must_use]
    pub fn dead_fraction(&self) -> f64 {
        if self.window_node_time == 0.0 {
            0.0
        } else {
            self.dead_node_time / self.window_node_time
        }
    }
}

/// One scheduled occurrence in a replica's calendar.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// The rank-`r` node's session ends.
    Depart(u64),
    /// The rank-`r` node comes back online.
    Arrive(u64),
    /// A lookup arrives (the Poisson traffic process).
    Lookup,
}

/// Scratch state for the frozen-mode batched lookup drain.
///
/// In frozen mode the aliveness words only move on churn events, so every
/// lookup drawn between two consecutive `Depart`/`Arrive` events observes
/// the same failure pattern. Instead of routing each one as it arrives, the
/// replica queues the drawn pair values here — the RNG draws still happen at
/// event time, so the traffic stream is untouched — and routes the whole
/// drain through one lockstep [`RouteBatch`] pass right before the next
/// liveness mutation. Outcomes are recorded in draw order, keeping the
/// folded hop statistics bit-identical to the per-lookup scalar path.
struct LookupDrain {
    batch: RouteBatch,
    pending: Vec<(u64, u64)>,
    measured: Vec<bool>,
    outcomes: Vec<RouteOutcome>,
}

impl LookupDrain {
    fn new() -> Self {
        LookupDrain {
            batch: RouteBatch::default(),
            pending: Vec::new(),
            measured: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// Queues one lookup drawn at event time; `measured` records whether
    /// the warmup window gates its tally contribution.
    fn push(&mut self, source: u64, target: u64, measured: bool) {
        self.pending.push((source, target));
        self.measured.push(measured);
    }

    /// Routes every queued lookup against the overlay's *current* aliveness
    /// words — callers flush before any liveness mutation, so the words are
    /// exactly those each lookup observed at draw time — and records the
    /// measured outcomes in draw order.
    fn flush<S: GeometryStrategy + Clone>(
        &mut self,
        overlay: &LiveOverlay<S>,
        hop_limit: u32,
        tally: &mut LiveChurnTally,
    ) {
        if self.pending.is_empty() {
            return;
        }
        overlay.routing_kernel().route_batch(
            &mut self.batch,
            overlay.rank_alive_words(),
            &self.pending,
            hop_limit,
            &mut self.outcomes,
        );
        for (index, &outcome) in self.outcomes.iter().enumerate() {
            if self.measured[index] {
                tally.record(outcome);
            }
        }
        self.pending.clear();
        self.measured.clear();
    }
}

/// The live-churn simulation engine: runs the configured number of
/// replicas, each an independent discrete-event simulation over its own
/// overlay instance, and merges the tallies in replica order.
///
/// # Example
///
/// ```rust
/// use dht_overlay::chord::ChordStrategy;
/// use dht_overlay::{ChordVariant, LiveOverlay};
/// use dht_id::{KeySpace, Population};
/// use dht_sim::{LifetimeDistribution, LiveChurnConfig, LiveChurnExperiment};
///
/// let config = LiveChurnConfig::new(
///     LifetimeDistribution::exponential(2.0)?,
///     LifetimeDistribution::exponential(0.5)?,
///     8.0,
///     50.0,
/// )?
/// .with_warmup(2.0)
/// .with_repair(true)
/// .with_seed(7);
/// let space = KeySpace::new(6).unwrap();
/// let tally = LiveChurnExperiment::new(config).run(|master_seed| {
///     let population = Population::full(space);
///     LiveOverlay::build(population, ChordStrategy::new(ChordVariant::Deterministic), master_seed)
///         .expect("ring supports live churn")
/// });
/// assert!(tally.attempted > 0);
/// // With repair on, the ring re-closes after every event: everything routes.
/// assert_eq!(tally.delivered, tally.attempted);
/// # Ok::<(), dht_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LiveChurnExperiment {
    config: LiveChurnConfig,
}

impl LiveChurnExperiment {
    /// Creates an engine for the given configuration.
    #[must_use]
    pub fn new(config: LiveChurnConfig) -> Self {
        LiveChurnExperiment { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &LiveChurnConfig {
        &self.config
    }

    /// Runs all replicas and merges their tallies in replica order.
    ///
    /// `build` constructs one replica's overlay from a master seed (each
    /// replica receives a distinct seed derived from the configured master
    /// seed); it is called once per replica, possibly from worker threads.
    pub fn run<S, F>(&self, build: F) -> LiveChurnTally
    where
        S: GeometryStrategy + Clone,
        F: Fn(u64) -> LiveOverlay<S> + Sync,
    {
        let replica_count = self.config.replicas as usize;
        let replica_seeds = SeedSequence::new(self.config.seed);
        let run_replica =
            |replica: usize| self.run_replica(replica_seeds.child(replica as u64), &build);

        // The same deterministic sharding mold as `TrialEngine`: fixed
        // replica→slot assignment, merge in replica order.
        let mut merged = LiveChurnTally::default();
        let threads = self.config.threads.min(replica_count);
        if threads <= 1 {
            for replica in 0..replica_count {
                merged.merge(&run_replica(replica));
            }
            return merged;
        }
        let mut tallies: Vec<Option<LiveChurnTally>> = vec![None; replica_count];
        let chunk = replica_count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (worker, slots) in tallies.chunks_mut(chunk).enumerate() {
                let run_replica = &run_replica;
                let base = worker * chunk;
                scope.spawn(move || {
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(run_replica(base + offset));
                    }
                });
            }
        });
        for tally in &tallies {
            merged.merge(tally.as_ref().expect("every replica ran"));
        }
        merged
    }

    /// Runs one replica: builds its overlay, seeds the calendar with every
    /// node's first departure and the first lookup arrival, then processes
    /// events in `(time, insertion)` order until the horizon.
    fn run_replica<S, F>(&self, replica_seed: u64, build: &F) -> LiveChurnTally
    where
        S: GeometryStrategy + Clone,
        F: Fn(u64) -> LiveOverlay<S>,
    {
        let config = &self.config;
        // Stream family: child 0 builds the overlay, child 1 drives the
        // lookup traffic, child 2 + r is node rank r's session stream.
        let seeds = SeedSequence::new(replica_seed);
        let mut overlay = build(seeds.child(0));
        let mut lookup_rng = seeds.child_rng(1);
        let node_count = overlay.population().node_count();
        let mut session_rngs: Vec<_> = (0..node_count)
            .map(|rank| seeds.child_rng(2 + rank))
            .collect();
        let hop_limit = default_route_hop_limit(&overlay);

        // Bucket width tuned so a bucket holds a handful of events in
        // expectation; correctness never depends on it.
        let event_rate =
            node_count as f64 / config.lifetime.mean().max(f64::MIN_POSITIVE) + config.lookup_rate;
        let width = (4.0_f64 / event_rate.max(f64::MIN_POSITIVE)).min(config.duration);
        let mut queue = CalendarQueue::new(width.max(f64::MIN_POSITIVE));

        // Everyone starts alive with a fresh session; lookups are Poisson.
        for rank in 0..node_count {
            let lifetime = config.lifetime.sample(&mut session_rngs[rank as usize]);
            queue.push(lifetime, Event::Depart(rank));
        }
        if config.lookup_rate > 0.0 {
            let first = exponential_gap(config.lookup_rate, &mut lookup_rng);
            if first <= config.duration {
                queue.push(first, Event::Lookup);
            }
        }

        let mut tally = LiveChurnTally {
            replicas: 1,
            ..LiveChurnTally::default()
        };
        // Frozen mode accumulates lookups here and drains them in batch
        // whenever the failure pattern is about to change; repair mode
        // routes immediately (the tables themselves move per event) and the
        // drain stays empty, making the flushes below no-ops.
        let mut drain = LookupDrain::new();
        let mut clock = 0.0_f64;
        while let Some((time, event)) = queue.pop() {
            if time > config.duration {
                break;
            }
            // Accumulate the offline-node integral over the slice of the
            // measurement window covered since the previous event.
            let lo = clock.max(config.warmup);
            let hi = time.max(config.warmup);
            if hi > lo {
                tally.dead_node_time += overlay.mask().failed_count() as f64 * (hi - lo);
            }
            clock = time;
            tally.events += 1;
            match event {
                Event::Depart(rank) => {
                    drain.flush(&overlay, hop_limit, &mut tally);
                    let node = overlay.population().node_at(rank);
                    if config.repair {
                        overlay.leave(node);
                    } else {
                        overlay.set_liveness_frozen(node, false);
                    }
                    tally.leaves += 1;
                    let downtime = config.downtime.sample(&mut session_rngs[rank as usize]);
                    queue.push(clock + downtime, Event::Arrive(rank));
                }
                Event::Arrive(rank) => {
                    drain.flush(&overlay, hop_limit, &mut tally);
                    let node = overlay.population().node_at(rank);
                    if config.repair {
                        overlay.join(node);
                    } else {
                        overlay.set_liveness_frozen(node, true);
                    }
                    tally.joins += 1;
                    let lifetime = config.lifetime.sample(&mut session_rngs[rank as usize]);
                    queue.push(clock + lifetime, Event::Depart(rank));
                }
                Event::Lookup => {
                    let gap = exponential_gap(config.lookup_rate, &mut lookup_rng);
                    queue.push(clock + gap, Event::Lookup);
                    let measured = clock >= config.warmup;
                    let alive = overlay.mask().alive_count();
                    if alive < 2 {
                        if measured {
                            tally.skipped += 1;
                        }
                        continue;
                    }
                    // A lookup between two distinct currently-alive nodes;
                    // the draws are consumed whether or not the warmup
                    // window gates the measurement, so the traffic process
                    // is identical in both regimes.
                    let source = overlay
                        .mask()
                        .select_alive(lookup_rng.gen_range(0..alive))
                        .expect("rank below the alive count");
                    let target = loop {
                        let candidate = overlay
                            .mask()
                            .select_alive(lookup_rng.gen_range(0..alive))
                            .expect("rank below the alive count");
                        if candidate != source {
                            break candidate;
                        }
                    };
                    if config.repair {
                        let outcome = overlay.routing_kernel().route_ranked(
                            overlay.rank_alive_words(),
                            source.value(),
                            target.value(),
                            hop_limit,
                        );
                        if measured {
                            tally.record(outcome);
                        }
                    } else {
                        drain.push(source.value(), target.value(), measured);
                    }
                }
            }
        }
        // Lookups drawn after the last churn event (or past the horizon
        // cut-off) still route against the final failure pattern.
        drain.flush(&overlay, hop_limit, &mut tally);
        // The tail of the window after the last processed event.
        let lo = clock.max(config.warmup);
        if config.duration > lo {
            tally.dead_node_time += overlay.mask().failed_count() as f64 * (config.duration - lo);
        }
        tally.window_node_time = (config.duration - config.warmup) * node_count as f64;
        tally.repairs = overlay.repairs();
        tally.state_digest = splitmix64(DIGEST_SEED ^ overlay.state_digest());
        tally
    }
}

/// One exponential inter-arrival gap for a Poisson process of `rate`.
fn exponential_gap<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::{KeySpace, Population};
    use dht_overlay::chord::ChordStrategy;
    use dht_overlay::kademlia::KademliaStrategy;
    use dht_overlay::ChordVariant;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn exp(mean: f64) -> LifetimeDistribution {
        LifetimeDistribution::exponential(mean).unwrap()
    }

    fn base_config() -> LiveChurnConfig {
        LiveChurnConfig::new(exp(2.0), exp(0.5), 12.0, 80.0)
            .unwrap()
            .with_warmup(4.0)
            .with_seed(11)
    }

    fn ring_builder(bits: u32) -> impl Fn(u64) -> LiveOverlay<ChordStrategy> + Sync {
        move |master_seed| {
            let space = KeySpace::new(bits).unwrap();
            LiveOverlay::build(
                Population::full(space),
                ChordStrategy::new(ChordVariant::Deterministic),
                master_seed,
            )
            .unwrap()
        }
    }

    #[test]
    fn calendar_queue_orders_by_time_then_insertion() {
        let mut queue = CalendarQueue::new(0.75);
        let times = [5.0, 0.25, 3.5, 0.25, 9.75, 3.5, 0.0];
        for (index, &time) in times.iter().enumerate() {
            queue.push(time, index);
        }
        assert_eq!(queue.len(), times.len());
        let mut drained = Vec::new();
        while let Some(popped) = queue.pop() {
            drained.push(popped);
        }
        assert!(queue.is_empty());
        assert_eq!(
            drained,
            vec![
                (0.0, 6),
                (0.25, 1),
                (0.25, 3),
                (3.5, 2),
                (3.5, 5),
                (5.0, 0),
                (9.75, 4)
            ]
        );
    }

    #[test]
    fn distributions_validate_and_report_their_means() {
        assert!(LifetimeDistribution::exponential(0.0).is_err());
        assert!(LifetimeDistribution::exponential(f64::NAN).is_err());
        assert!(LifetimeDistribution::pareto(1.0, 1.0).is_err());
        assert!(LifetimeDistribution::pareto(2.0, 0.0).is_err());
        assert_eq!(exp(2.5).mean(), 2.5);
        // Pareto(3, 2): mean = 3·2/(3−1) = 3.
        let pareto = LifetimeDistribution::pareto(3.0, 2.0).unwrap();
        assert_eq!(pareto.mean(), 3.0);
    }

    #[test]
    fn sample_means_converge_to_the_analytic_means() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for dist in [exp(2.0), LifetimeDistribution::pareto(3.0, 2.0).unwrap()] {
            let mut stats = RunningStats::new();
            for _ in 0..40_000 {
                let draw = dist.sample(&mut rng);
                assert!(draw.is_finite() && draw >= 0.0);
                stats.push(draw);
            }
            let error = (stats.mean() - dist.mean()).abs() / dist.mean();
            assert!(
                error < 0.05,
                "sample mean {} too far from {}",
                stats.mean(),
                dist.mean()
            );
        }
    }

    #[test]
    fn config_validates_and_exposes_the_stationary_fraction() {
        assert!(LiveChurnConfig::new(exp(1.0), exp(1.0), 0.0, 1.0).is_err());
        assert!(LiveChurnConfig::new(exp(1.0), exp(1.0), 10.0, -1.0).is_err());
        let config = base_config();
        // q* = 0.5 / (2.0 + 0.5) = 0.2.
        assert!((config.stationary_failure_fraction() - 0.2).abs() < 1e-12);
        // Warmup clamps to the horizon.
        assert_eq!(base_config().with_warmup(99.0).warmup(), 12.0);
        assert_eq!(base_config().with_replicas(0).replicas(), 1);
    }

    #[test]
    fn frozen_mode_matches_the_stationary_failure_fraction() {
        let config = base_config().with_warmup(6.0).with_replicas(4).with_seed(3);
        let tally = LiveChurnExperiment::new(config).run(ring_builder(7));
        assert_eq!(tally.replicas, 4);
        assert_eq!(tally.repairs, 0, "frozen mode must not rewrite tables");
        let predicted = config.stationary_failure_fraction();
        let observed = tally.dead_fraction();
        assert!(
            (observed - predicted).abs() < 0.05,
            "observed dead fraction {observed} vs stationary {predicted}"
        );
    }

    #[test]
    fn repair_mode_keeps_the_ring_fully_routable() {
        let config = base_config().with_repair(true);
        let tally = LiveChurnExperiment::new(config).run(ring_builder(6));
        assert!(tally.attempted > 100);
        assert_eq!(
            tally.delivered, tally.attempted,
            "a repaired ring always closes around failures"
        );
        assert!(tally.repairs > 0, "repairs must actually happen");
        assert!(tally.joins > 0 && tally.leaves > tally.joins.saturating_sub(2));
    }

    /// The expectations here were captured from the per-lookup scalar
    /// implementation immediately before the batched drain landed: frozen
    /// mode must stay bit-identical — counters, hop-stat bit patterns and
    /// the folded state digest — under the lockstep rewrite.
    #[test]
    fn frozen_drains_match_the_scalar_reference_goldens() {
        struct Golden {
            seed: u64,
            attempted: u64,
            delivered: u64,
            dropped: u64,
            digest: u64,
            mean_bits: u64,
            variance_bits: u64,
        }
        let goldens = [
            Golden {
                seed: 9,
                attempted: 1346,
                delivered: 1302,
                dropped: 44,
                digest: 0xa979_4047_3b58_fc8a,
                mean_bits: 0x400e_917f_cdaa_45fe,
                variance_bits: 0x4003_0ed7_8738_1337,
            },
            Golden {
                seed: 23,
                attempted: 1296,
                delivered: 1258,
                dropped: 38,
                digest: 0x158b_e6a1_aa33_cddb,
                mean_bits: 0x400f_3e45_306e_b3e3,
                variance_bits: 0x4002_e9ca_4454_9cbb,
            },
        ];
        for golden in goldens {
            let config = base_config().with_replicas(2).with_seed(golden.seed);
            let tally = LiveChurnExperiment::new(config).run(ring_builder(7));
            assert_eq!(tally.attempted, golden.attempted);
            assert_eq!(tally.delivered, golden.delivered);
            assert_eq!(tally.dropped, golden.dropped);
            assert_eq!(tally.hop_limited, 0);
            assert_eq!(tally.skipped, 0);
            assert_eq!(tally.state_digest, golden.digest);
            assert_eq!(tally.hop_stats.mean().to_bits(), golden.mean_bits);
            assert_eq!(
                tally.hop_stats.sample_variance().to_bits(),
                golden.variance_bits
            );
        }
    }

    #[test]
    fn tallies_are_identical_across_thread_counts() {
        let config = base_config().with_replicas(6).with_repair(true);
        let space = KeySpace::new(5).unwrap();
        let build = move |master_seed: u64| {
            LiveOverlay::build(Population::full(space), KademliaStrategy, master_seed).unwrap()
        };
        let sequential = LiveChurnExperiment::new(config.with_threads(1)).run(build);
        let threaded = LiveChurnExperiment::new(config.with_threads(5)).run(build);
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn distinct_seeds_give_distinct_traffic() {
        let config = base_config();
        let a = LiveChurnExperiment::new(config.with_seed(1)).run(ring_builder(6));
        let b = LiveChurnExperiment::new(config.with_seed(2)).run(ring_builder(6));
        assert_ne!(a.state_digest, b.state_digest);
        assert_ne!(a, b);
    }
}
