//! Sampling of source/destination pairs among surviving nodes.

use dht_id::NodeId;
use dht_overlay::{select_in_word, FailureMask};
use rand::Rng;

/// Samples ordered source/destination pairs uniformly among the surviving
/// nodes of a failure pattern.
///
/// Routability (Definition 1 of the paper) is a statement about ordered pairs
/// of *surviving* nodes; the sampler therefore draws both endpoints from the
/// alive set and never returns a pair with `source == target`. Masks over a
/// sparse [`dht_id::Population`] report unoccupied identifiers as failed, so
/// the sampler automatically draws only occupied survivors.
///
/// The sampler draws by *rank* directly into the mask's bitset: construction
/// builds one cumulative popcount per 64-identifier word (8 bytes per 64
/// nodes, instead of the 16-byte `NodeId` per survivor the seed collected),
/// and each draw binary-searches that index and then selects within a single
/// word ([`dht_overlay::select_in_word`]). Because the sampler borrows the
/// mask, the mask cannot be mutated out from under the index.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
/// use dht_overlay::FailureMask;
/// use dht_sim::PairSampler;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let space = KeySpace::new(8)?;
/// let mut rng = ChaCha8Rng::seed_from_u64(5);
/// let mask = FailureMask::sample(space, 0.5, &mut rng);
/// let sampler = PairSampler::new(&mask).expect("enough survivors");
/// let (source, target) = sampler.sample(&mut rng);
/// assert!(mask.is_alive(source) && mask.is_alive(target));
/// assert_ne!(source, target);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PairSampler<'mask> {
    mask: &'mask FailureMask,
    /// `cumulative[i]` is the number of alive nodes in words `0..i` of the
    /// mask; `cumulative.len() == words.len() + 1`.
    cumulative: Vec<u64>,
}

impl<'mask> PairSampler<'mask> {
    /// Builds a sampler over the surviving nodes of `mask`.
    ///
    /// Returns `None` when fewer than two nodes survive (no pair exists).
    #[must_use]
    pub fn new(mask: &'mask FailureMask) -> Option<Self> {
        if mask.alive_count() < 2 {
            return None;
        }
        let words = mask.words();
        let mut cumulative = Vec::with_capacity(words.len() + 1);
        let mut total = 0u64;
        cumulative.push(0);
        for word in words {
            total += u64::from(word.count_ones());
            cumulative.push(total);
        }
        debug_assert_eq!(total, mask.alive_count(), "mask counters match the bitset");
        Some(PairSampler { mask, cumulative })
    }

    /// Number of surviving nodes the sampler draws from.
    #[must_use]
    pub fn survivor_count(&self) -> usize {
        self.mask.alive_count() as usize
    }

    /// The surviving node of the given rank (ascending identifier order), via
    /// the cumulative popcount index.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= survivor_count()`.
    #[must_use]
    pub fn select(&self, rank: u64) -> NodeId {
        self.mask.key_space().wrap(self.select_value(rank))
    }

    /// [`PairSampler::select`] as a raw identifier value — the rank is
    /// resolved against the bitset directly, with no [`NodeId`] constructed.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= survivor_count()`.
    #[must_use]
    pub fn select_value(&self, rank: u64) -> u64 {
        assert!(
            rank < self.mask.alive_count(),
            "rank {rank} out of range for {} survivors",
            self.mask.alive_count()
        );
        // Last index whose cumulative count is <= rank: the word holding the
        // rank-th survivor.
        let word_index = self.cumulative.partition_point(|&count| count <= rank) - 1;
        let within = (rank - self.cumulative[word_index]) as u32;
        let bit = select_in_word(self.mask.words()[word_index], within);
        word_index as u64 * 64 + u64::from(bit)
    }

    /// Draws one ordered pair of distinct surviving nodes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        let (source, target) = self.sample_values(rng);
        let space = self.mask.key_space();
        (space.wrap(source), space.wrap(target))
    }

    /// [`PairSampler::sample`] as raw identifier values: the same two rank
    /// draws (bit-for-bit the same RNG stream), resolved straight off the
    /// bitset without the `NodeId` → rank → `NodeId` round trip.
    ///
    /// This is the trial engine's hot path: the compiled routing kernel
    /// consumes raw values, so identifiers never need to be materialised
    /// between the draw and the route.
    pub fn sample_values<R: Rng + ?Sized>(&self, rng: &mut R) -> (u64, u64) {
        let survivors = self.mask.alive_count();
        let source_rank = rng.gen_range(0..survivors);
        // Draw the target from the remaining n-1 slots to guarantee
        // distinctness without rejection loops.
        let mut target_rank = rng.gen_range(0..survivors - 1);
        if target_rank >= source_rank {
            target_rank += 1;
        }
        (
            self.select_value(source_rank),
            self.select_value(target_rank),
        )
    }

    /// Draws `count` ordered pairs of raw identifier values into `out`
    /// (cleared first) — exactly `count` repetitions of
    /// [`PairSampler::sample_values`], consuming the identical RNG stream in
    /// the identical order.
    ///
    /// This is the batched-routing refill path: the trial engine fills one
    /// shard's pair buffer in a single call and hands the slice to
    /// [`RoutingKernel::route_batch`](dht_overlay::RoutingKernel::route_batch),
    /// keeping the routing frontier full without perturbing a single draw —
    /// per-shard draw order is what makes the committed measured values
    /// bit-identical across scalar, per-route-kernel and batched engines.
    pub fn sample_values_into<R: Rng + ?Sized>(
        &self,
        count: u64,
        rng: &mut R,
        out: &mut Vec<(u64, u64)>,
    ) {
        out.clear();
        out.reserve(usize::try_from(count).expect("pair batches fit usize"));
        for _ in 0..count {
            out.push(self.sample_values(rng));
        }
    }

    /// Draws `count` ordered pairs.
    ///
    /// Batch drivers should prefer [`PairSampler::sample_values_into`] over a
    /// reused buffer; this helper remains for examples and tests.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: u64, rng: &mut R) -> Vec<(NodeId, NodeId)> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::KeySpace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn samples_are_alive_and_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mask = FailureMask::sample(space(10), 0.4, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        for _ in 0..1000 {
            let (source, target) = sampler.sample(&mut rng);
            assert!(mask.is_alive(source));
            assert!(mask.is_alive(target));
            assert_ne!(source, target);
        }
    }

    #[test]
    fn survivor_count_matches_mask() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mask = FailureMask::sample(space(10), 0.25, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        assert_eq!(sampler.survivor_count() as u64, mask.alive_count());
    }

    #[test]
    fn select_agrees_with_the_masks_linear_select() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mask = FailureMask::sample(space(9), 0.5, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        for rank in 0..mask.alive_count() {
            assert_eq!(Some(sampler.select(rank)), mask.select_alive(rank));
        }
    }

    #[test]
    fn too_few_survivors_yields_none() {
        let s = space(3);
        // Fail everyone but node 0.
        let mask = FailureMask::from_failed_nodes(s, (1..8).map(|v| s.wrap(v)));
        assert!(PairSampler::new(&mask).is_none());
        // Two survivors are enough.
        let mask = FailureMask::from_failed_nodes(s, (2..8).map(|v| s.wrap(v)));
        let sampler = PairSampler::new(&mask).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (a, b) = sampler.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn sparse_population_masks_yield_only_occupied_pairs() {
        use dht_id::Population;
        let s = space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let population = Population::sample_uniform(s, 200, &mut rng).unwrap();
        let mask = FailureMask::sample_over(&population, 0.25, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        assert_eq!(sampler.survivor_count() as u64, mask.alive_count());
        for _ in 0..500 {
            let (source, target) = sampler.sample(&mut rng);
            assert!(population.contains(source));
            assert!(population.contains(target));
            assert!(mask.is_alive(source) && mask.is_alive(target));
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mask = FailureMask::sample(space(8), 0.1, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        assert_eq!(sampler.sample_many(257, &mut rng).len(), 257);
    }

    #[test]
    fn sample_values_is_the_same_stream_as_sample() {
        // The value-level sampler must make exactly the same RNG draws and
        // resolve to the same identifiers: it is a representation change,
        // not a new stream.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mask = FailureMask::sample(space(10), 0.35, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        let mut a = ChaCha8Rng::seed_from_u64(77);
        let mut b = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..500 {
            let (source, target) = sampler.sample(&mut a);
            let (source_value, target_value) = sampler.sample_values(&mut b);
            assert_eq!(source.value(), source_value);
            assert_eq!(target.value(), target_value);
        }
        // Both consumed the identical amount of randomness.
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn sample_values_into_is_the_same_stream_as_repeated_draws() {
        // The batched refill is a buffering change, not a new stream: it must
        // make exactly the draws that `count` repeated `sample_values` calls
        // make, in the same order.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let mask = FailureMask::sample(space(10), 0.3, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        let streamed: Vec<(u64, u64)> = (0..257).map(|_| sampler.sample_values(&mut a)).collect();
        let mut batched = vec![(0u64, 0u64); 3]; // stale contents must be cleared
        sampler.sample_values_into(257, &mut b, &mut batched);
        assert_eq!(streamed, batched);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "same randomness consumed");
        // A zero-count refill clears the buffer and draws nothing.
        sampler.sample_values_into(0, &mut b, &mut batched);
        assert!(batched.is_empty());
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn sampling_covers_the_survivor_set() {
        // With enough draws every survivor should appear as a source.
        let s = space(5);
        let mask = FailureMask::none(s);
        let sampler = PairSampler::new(&mask).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 32];
        for _ in 0..2000 {
            let (source, _) = sampler.sample(&mut rng);
            seen[source.value() as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampling must cover all nodes"
        );
    }
}
