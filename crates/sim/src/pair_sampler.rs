//! Sampling of source/destination pairs among surviving nodes.

use dht_id::NodeId;
use dht_overlay::FailureMask;
use rand::Rng;

/// Samples ordered source/destination pairs uniformly among the surviving
/// nodes of a failure pattern.
///
/// Routability (Definition 1 of the paper) is a statement about ordered pairs
/// of *surviving* nodes; the sampler therefore draws both endpoints from the
/// alive set and never returns a pair with `source == target`. Masks over a
/// sparse [`dht_id::Population`] report unoccupied identifiers as failed, so
/// the sampler automatically draws only occupied survivors.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
/// use dht_overlay::FailureMask;
/// use dht_sim::PairSampler;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let space = KeySpace::new(8)?;
/// let mut rng = ChaCha8Rng::seed_from_u64(5);
/// let mask = FailureMask::sample(space, 0.5, &mut rng);
/// let sampler = PairSampler::new(&mask).expect("enough survivors");
/// let (source, target) = sampler.sample(&mut rng);
/// assert!(mask.is_alive(source) && mask.is_alive(target));
/// assert_ne!(source, target);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PairSampler {
    alive: Vec<NodeId>,
}

impl PairSampler {
    /// Builds a sampler over the surviving nodes of `mask`.
    ///
    /// Returns `None` when fewer than two nodes survive (no pair exists).
    #[must_use]
    pub fn new(mask: &FailureMask) -> Option<Self> {
        let alive: Vec<NodeId> = mask.alive_nodes().collect();
        if alive.len() < 2 {
            None
        } else {
            Some(PairSampler { alive })
        }
    }

    /// Number of surviving nodes the sampler draws from.
    #[must_use]
    pub fn survivor_count(&self) -> usize {
        self.alive.len()
    }

    /// Draws one ordered pair of distinct surviving nodes.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        let source_index = rng.gen_range(0..self.alive.len());
        // Draw the target from the remaining n-1 slots to guarantee
        // distinctness without rejection loops.
        let mut target_index = rng.gen_range(0..self.alive.len() - 1);
        if target_index >= source_index {
            target_index += 1;
        }
        (self.alive[source_index], self.alive[target_index])
    }

    /// Draws `count` ordered pairs.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: u64, rng: &mut R) -> Vec<(NodeId, NodeId)> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::KeySpace;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn samples_are_alive_and_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mask = FailureMask::sample(space(10), 0.4, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        for _ in 0..1000 {
            let (source, target) = sampler.sample(&mut rng);
            assert!(mask.is_alive(source));
            assert!(mask.is_alive(target));
            assert_ne!(source, target);
        }
    }

    #[test]
    fn survivor_count_matches_mask() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mask = FailureMask::sample(space(10), 0.25, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        assert_eq!(sampler.survivor_count() as u64, mask.alive_count());
    }

    #[test]
    fn too_few_survivors_yields_none() {
        let s = space(3);
        // Fail everyone but node 0.
        let mask = FailureMask::from_failed_nodes(s, (1..8).map(|v| s.wrap(v)));
        assert!(PairSampler::new(&mask).is_none());
        // Two survivors are enough.
        let mask = FailureMask::from_failed_nodes(s, (2..8).map(|v| s.wrap(v)));
        let sampler = PairSampler::new(&mask).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (a, b) = sampler.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn sparse_population_masks_yield_only_occupied_pairs() {
        use dht_id::Population;
        let s = space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let population = Population::sample_uniform(s, 200, &mut rng).unwrap();
        let mask = FailureMask::sample_over(&population, 0.25, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        assert_eq!(sampler.survivor_count() as u64, mask.alive_count());
        for _ in 0..500 {
            let (source, target) = sampler.sample(&mut rng);
            assert!(population.contains(source));
            assert!(population.contains(target));
            assert!(mask.is_alive(source) && mask.is_alive(target));
        }
    }

    #[test]
    fn sample_many_returns_requested_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mask = FailureMask::sample(space(8), 0.1, &mut rng);
        let sampler = PairSampler::new(&mask).unwrap();
        assert_eq!(sampler.sample_many(257, &mut rng).len(), 257);
    }

    #[test]
    fn sampling_covers_the_survivor_set() {
        // With enough draws every survivor should appear as a source.
        let s = space(5);
        let mask = FailureMask::none(s);
        let sampler = PairSampler::new(&mask).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut seen = [false; 32];
        for _ in 0..2000 {
            let (source, _) = sampler.sample(&mut rng);
            seen[source.value() as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "uniform sampling must cover all nodes"
        );
    }
}
