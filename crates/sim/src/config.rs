//! Experiment configuration and validation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised by the simulation harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimError {
    /// The failure probability must lie in `[0, 1)`.
    InvalidFailureProbability {
        /// The rejected probability.
        q: f64,
    },
    /// A configuration field was out of range.
    InvalidConfiguration {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// Too few nodes survived the failure pattern to sample any pair.
    NotEnoughSurvivors {
        /// Number of surviving nodes observed.
        survivors: u64,
    },
    /// Writing a report failed.
    Io {
        /// The underlying error message.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidFailureProbability { q } => {
                write!(f, "failure probability must lie in [0, 1), got {q}")
            }
            SimError::InvalidConfiguration { message } => {
                write!(f, "invalid configuration: {message}")
            }
            SimError::NotEnoughSurvivors { survivors } => write!(
                f,
                "need at least two surviving nodes to sample a pair, found {survivors}"
            ),
            SimError::Io { message } => write!(f, "report output failed: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<std::io::Error> for SimError {
    fn from(err: std::io::Error) -> Self {
        SimError::Io {
            message: err.to_string(),
        }
    }
}

/// Configuration of one static-resilience measurement.
///
/// # Example
///
/// ```rust
/// use dht_sim::StaticResilienceConfig;
///
/// let config = StaticResilienceConfig::new(0.3)?
///     .with_pairs(50_000)
///     .with_trials(3)
///     .with_seed(42);
/// assert_eq!(config.pairs(), 50_000);
/// assert_eq!(config.trials(), 3);
/// # Ok::<(), dht_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticResilienceConfig {
    failure_probability: f64,
    pairs: u64,
    trials: u32,
    seed: u64,
    threads: usize,
}

impl StaticResilienceConfig {
    /// Creates a configuration for failure probability `q` with defaults of
    /// 10 000 sampled pairs, one trial, seed 0 and single-threaded execution.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFailureProbability`] unless `q ∈ [0, 1)`.
    pub fn new(failure_probability: f64) -> Result<Self, SimError> {
        if !(0.0..1.0).contains(&failure_probability) || failure_probability.is_nan() {
            return Err(SimError::InvalidFailureProbability {
                q: failure_probability,
            });
        }
        Ok(StaticResilienceConfig {
            failure_probability,
            pairs: 10_000,
            trials: 1,
            seed: 0,
            threads: 1,
        })
    }

    /// Sets the number of source/destination pairs sampled per trial.
    #[must_use]
    pub fn with_pairs(mut self, pairs: u64) -> Self {
        self.pairs = pairs.max(1);
        self
    }

    /// Sets the number of independent trials (failure patterns) to average
    /// over.
    #[must_use]
    pub fn with_trials(mut self, trials: u32) -> Self {
        self.trials = trials.max(1);
        self
    }

    /// Sets the master seed from which all per-trial randomness derives.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads used to evaluate sampled pairs.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, 256);
        self
    }

    /// The node failure probability `q`.
    #[must_use]
    pub fn failure_probability(&self) -> f64 {
        self.failure_probability
    }

    /// Pairs sampled per trial.
    #[must_use]
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Number of independent trials.
    #[must_use]
    pub fn trials(&self) -> u32 {
        self.trials
    }

    /// Master seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Worker threads used per trial.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let config = StaticResilienceConfig::new(0.25).unwrap();
        assert_eq!(config.failure_probability(), 0.25);
        assert_eq!(config.pairs(), 10_000);
        assert_eq!(config.trials(), 1);
        assert_eq!(config.seed(), 0);
        assert_eq!(config.threads(), 1);
    }

    #[test]
    fn builder_setters_apply() {
        let config = StaticResilienceConfig::new(0.1)
            .unwrap()
            .with_pairs(500)
            .with_trials(4)
            .with_seed(99)
            .with_threads(8);
        assert_eq!(config.pairs(), 500);
        assert_eq!(config.trials(), 4);
        assert_eq!(config.seed(), 99);
        assert_eq!(config.threads(), 8);
    }

    #[test]
    fn zero_valued_settings_are_clamped() {
        let config = StaticResilienceConfig::new(0.1)
            .unwrap()
            .with_pairs(0)
            .with_trials(0)
            .with_threads(0);
        assert_eq!(config.pairs(), 1);
        assert_eq!(config.trials(), 1);
        assert_eq!(config.threads(), 1);
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        assert!(StaticResilienceConfig::new(1.0).is_err());
        assert!(StaticResilienceConfig::new(-0.01).is_err());
        assert!(StaticResilienceConfig::new(f64::NAN).is_err());
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = SimError::NotEnoughSurvivors { survivors: 1 };
        assert!(err.to_string().contains("two surviving"));
        let err: SimError = std::io::Error::other("disk full").into();
        assert!(err.to_string().contains("disk full"));
    }

    #[test]
    fn config_round_trips_through_serde() {
        let config = StaticResilienceConfig::new(0.4).unwrap().with_pairs(123);
        let json = serde_json::to_string(&config).unwrap();
        let back: StaticResilienceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }
}
