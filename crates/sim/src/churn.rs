//! **Snapshot churn**: a round-based churn extension of the static model.
//!
//! The paper analyses a *static* failure pattern and notes that the
//! applicability of the results to dynamic conditions (churn) "is currently
//! under study" (§1). This module provides the simplest simulation-side
//! extension: nodes toggle between alive and failed between discrete
//! rounds, routing tables stay frozen at the initial build, and routability
//! is measured on the *static snapshot* each round leaves behind — time
//! does not pass while messages route, and nothing is ever repaired. It is
//! exercised by the `churn_timeline` example and by tests; no figure of the
//! paper depends on it.
//!
//! For churn as a *process* — continuous-time node sessions, concurrent
//! lookup traffic, and (optionally) incremental table repair after every
//! departure and return — see [`crate::events`], whose frozen-table mode
//! reduces to the same static model this module samples round by round.

use crate::config::SimError;
use crate::engine::TrialEngine;
use crate::rng::SeedSequence;
use dht_overlay::{FailureMask, Overlay};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a churn simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Probability that an alive node fails during one round.
    pub failure_rate: f64,
    /// Probability that a failed node recovers during one round.
    pub recovery_rate: f64,
    /// Number of rounds to simulate.
    pub rounds: u32,
    /// Pairs sampled per round.
    pub pairs_per_round: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads used to route each round's pairs (results are
    /// identical for any value; see [`TrialEngine`]).
    pub threads: usize,
}

impl ChurnConfig {
    /// Creates a churn configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfiguration`] if either rate is outside
    /// `[0, 1]` or `rounds == 0`.
    pub fn new(failure_rate: f64, recovery_rate: f64, rounds: u32) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&failure_rate) || failure_rate.is_nan() {
            return Err(SimError::InvalidConfiguration {
                message: format!("failure rate must lie in [0, 1], got {failure_rate}"),
            });
        }
        if !(0.0..=1.0).contains(&recovery_rate) || recovery_rate.is_nan() {
            return Err(SimError::InvalidConfiguration {
                message: format!("recovery rate must lie in [0, 1], got {recovery_rate}"),
            });
        }
        if rounds == 0 {
            return Err(SimError::InvalidConfiguration {
                message: "a churn simulation needs at least one round".into(),
            });
        }
        Ok(ChurnConfig {
            failure_rate,
            recovery_rate,
            rounds,
            pairs_per_round: 2_000,
            seed: 0,
            threads: 1,
        })
    }

    /// Sets the number of pairs sampled per round.
    #[must_use]
    pub fn with_pairs_per_round(mut self, pairs: u64) -> Self {
        self.pairs_per_round = pairs.max(1);
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads used to route each round's pairs
    /// (clamped to `1..=256`). Thread count never changes the measured
    /// numbers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, 256);
        self
    }

    /// The long-run fraction of failed nodes this churn process converges to,
    /// `failure_rate / (failure_rate + recovery_rate)`.
    #[must_use]
    pub fn stationary_failure_fraction(&self) -> f64 {
        if self.failure_rate + self.recovery_rate == 0.0 {
            0.0
        } else {
            self.failure_rate / (self.failure_rate + self.recovery_rate)
        }
    }
}

/// Routability measured in one churn round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnRound {
    /// Round index (0-based).
    pub round: u32,
    /// Fraction of nodes failed at measurement time.
    pub failed_fraction: f64,
    /// Measured routability among survivors for this round.
    pub routability: f64,
    /// Pairs attempted this round.
    pub pairs_attempted: u64,
}

/// Runs a **snapshot-churn** simulation: the liveness mask evolves between
/// discrete rounds while the overlay's routing tables stay frozen at the
/// initial build, and each round is measured as a static snapshot.
///
/// This is the paper's static model sampled along a Markov liveness
/// trajectory — not live churn. For continuous-time sessions with
/// concurrent traffic and incremental repair, use
/// [`crate::events::LiveChurnExperiment`].
#[derive(Debug, Clone)]
pub struct ChurnExperiment {
    config: ChurnConfig,
}

impl ChurnExperiment {
    /// Creates a churn experiment runner.
    #[must_use]
    pub fn new(config: ChurnConfig) -> Self {
        ChurnExperiment { config }
    }

    /// The configuration this runner executes.
    #[must_use]
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Simulates the churn process and measures routability each round.
    ///
    /// Only the occupied identifiers of the overlay's population churn;
    /// unoccupied identifiers of a sparse overlay never hold a node. The
    /// alive/failed evolution is inherently sequential (each round depends on
    /// the previous), but each round's pair budget runs on the sharded
    /// [`TrialEngine`], so results are identical for any
    /// [`ChurnConfig::threads`] value.
    pub fn run<O>(&self, overlay: &O) -> Vec<ChurnRound>
    where
        O: Overlay + ?Sized,
    {
        let population = overlay.population();
        let seeds = SeedSequence::new(self.config.seed);
        let mut churn_rng = seeds.child_rng(0);
        // Child 1 roots the pair streams: each round gets its own seed, from
        // which the engine derives per-shard streams.
        let pair_seeds = SeedSequence::new(seeds.child(1));
        let engine = TrialEngine::new(self.config.threads);
        let mut mask = FailureMask::none_over(population);
        let mut rounds = Vec::with_capacity(self.config.rounds as usize);

        for round in 0..self.config.rounds {
            // Evolve the alive/failed state of every occupied node by one
            // round.
            let mut next = FailureMask::none_over(population);
            for node in population.iter_nodes() {
                let currently_failed = mask.is_failed(node);
                let fails_now = if currently_failed {
                    !churn_rng.gen_bool(self.config.recovery_rate)
                } else {
                    churn_rng.gen_bool(self.config.failure_rate)
                };
                if fails_now {
                    next.fail_node(node);
                }
            }
            mask = next;

            let failed_fraction = mask.failed_count() as f64 / population.node_count() as f64;
            let (routability, attempted) = match engine.run_trial(
                overlay,
                &mask,
                self.config.pairs_per_round,
                pair_seeds.child(u64::from(round)),
            ) {
                Some(tally) => (tally.routability(), tally.attempted),
                None => (0.0, 0),
            };
            rounds.push(ChurnRound {
                round,
                failed_fraction,
                routability,
                pairs_attempted: attempted,
            });
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::{CanOverlay, KademliaOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn configuration_is_validated() {
        assert!(ChurnConfig::new(1.5, 0.5, 10).is_err());
        assert!(ChurnConfig::new(0.5, -0.1, 10).is_err());
        assert!(ChurnConfig::new(0.1, 0.5, 0).is_err());
        let config = ChurnConfig::new(0.1, 0.3, 5).unwrap();
        assert!((config.stationary_failure_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn churn_reaches_the_stationary_failure_fraction() {
        let overlay = CanOverlay::build(10).unwrap();
        let config = ChurnConfig::new(0.2, 0.2, 30)
            .unwrap()
            .with_pairs_per_round(200)
            .with_seed(4);
        let rounds = ChurnExperiment::new(config).run(&overlay);
        assert_eq!(rounds.len(), 30);
        let late_average: f64 = rounds[20..].iter().map(|r| r.failed_fraction).sum::<f64>() / 10.0;
        assert!(
            (late_average - 0.5).abs() < 0.1,
            "stationary fraction should be ~0.5, got {late_average}"
        );
    }

    #[test]
    fn zero_churn_keeps_perfect_routability() {
        let overlay = CanOverlay::build(8).unwrap();
        let config = ChurnConfig::new(0.0, 1.0, 5)
            .unwrap()
            .with_pairs_per_round(100)
            .with_seed(1);
        let rounds = ChurnExperiment::new(config).run(&overlay);
        for round in rounds {
            assert_eq!(round.failed_fraction, 0.0);
            assert_eq!(round.routability, 1.0);
        }
    }

    #[test]
    fn routability_degrades_as_churn_accumulates() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let overlay = KademliaOverlay::build(10, &mut rng).unwrap();
        // Failure without recovery: the failed fraction ramps up over rounds
        // and routability must fall accordingly.
        let config = ChurnConfig::new(0.15, 0.0, 10)
            .unwrap()
            .with_pairs_per_round(500)
            .with_seed(8);
        let rounds = ChurnExperiment::new(config).run(&overlay);
        assert!(rounds.last().unwrap().failed_fraction > rounds[0].failed_fraction);
        assert!(rounds.last().unwrap().routability < rounds[0].routability);
    }

    #[test]
    fn runs_are_reproducible() {
        let overlay = CanOverlay::build(8).unwrap();
        let config = ChurnConfig::new(0.1, 0.2, 8).unwrap().with_seed(3);
        let a = ChurnExperiment::new(config).run(&overlay);
        let b = ChurnExperiment::new(config).run(&overlay);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_never_changes_the_timeline() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let overlay = KademliaOverlay::build(9, &mut rng).unwrap();
        let base = ChurnConfig::new(0.1, 0.3, 6)
            .unwrap()
            .with_pairs_per_round(3_000)
            .with_seed(21);
        let single = ChurnExperiment::new(base.with_threads(1)).run(&overlay);
        for threads in [2, 5, 8] {
            let multi = ChurnExperiment::new(base.with_threads(threads)).run(&overlay);
            assert_eq!(single, multi, "threads = {threads}");
        }
    }
}
