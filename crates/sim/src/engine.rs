//! The sharded, deterministic trial engine behind every measured curve.
//!
//! Static-resilience and churn measurements reduce to the same hot loop:
//! sample a pair of surviving nodes, route greedily under a frozen
//! [`FailureMask`], tally the outcome — repeated millions of times. The seed
//! implementation materialised a pair vector and an outcome vector per trial
//! and split them across threads in chunks whose boundaries depended on the
//! thread count, so parallel runs were only *statistically* equivalent to
//! serial ones. [`TrialEngine`] replaces that with logical **shards**:
//!
//! * a trial's pair budget is cut into fixed-size shards
//!   ([`TrialEngine::pairs_per_shard`], independent of the thread count);
//! * shard `s` draws its pairs from its own ChaCha8 stream, derived from the
//!   trial's pair seed via [`SeedSequence`];
//! * worker threads (std scoped threads) each execute a contiguous range of
//!   shards, and the per-shard [`TrialTally`]s are merged **in shard order**.
//!
//! Because both the shard boundaries and the shard streams are functions of
//! the configuration alone, the merged tally is bit-identical for any thread
//! count — one thread or sixty-four. The loop itself performs no per-route
//! allocation: pairs are drawn by rank directly from the mask's bitset
//! ([`PairSampler`]), outcomes are folded into the shard's tally on the
//! spot, and each worker thread reuses one scratch allocation (its routing
//! frontier and pair buffer) across every shard it executes.
//!
//! When the overlay exposes a compiled kernel, shards route through the
//! **batched lockstep path** ([`RoutingKernel::route_batch`]): the shard's
//! whole pair budget is drawn in one [`PairSampler::sample_values_into`] call
//! (the identical RNG stream as per-pair draws), routed with up to a
//! [`RouteBatch`] width of lookups in flight, and recorded in draw order —
//! so the batched engine's tallies are bit-identical to the per-route
//! engine's, which are bit-identical to the scalar path's.
//!
//! Overlays with no materialized kernel but an **implicit** one
//! ([`dht_overlay::ImplicitOverlay`], beyond the materialized ceiling) run
//! the same lockstep scheme through [`ImplicitKernel::route_batch`]: each
//! worker carries one [`ImplicitRowCache`] in its scratch, so plan rows are
//! regenerated per worker and the engine's resident set stays mask +
//! O(cache) bytes regardless of the overlay size.

use crate::pair_sampler::PairSampler;
use crate::rng::SeedSequence;
use dht_mathkit::stats::RunningStats;
use dht_overlay::{
    default_route_hop_limit, route_prevalidated, FailureMask, ImplicitKernel, ImplicitRowCache,
    Overlay, RouteBatch, RouteOutcome, RoutingKernel,
};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Default number of pairs per logical shard.
///
/// Small enough that typical budgets (10⁴–10⁷ pairs) split into more shards
/// than cores, large enough that a shard amortises its RNG setup. Changing
/// the shard size changes the sampled streams (it re-partitions the budget),
/// so it is a configuration input, not a tuning knob the engine may adjust
/// silently.
pub const DEFAULT_PAIRS_PER_SHARD: u64 = 4096;

/// Outcome counts of one batch of routed pairs.
///
/// Tallies are plain sums plus a mergeable [`RunningStats`] over delivered
/// hop counts, so per-shard tallies fold together associatively; the engine
/// always folds them in shard order, which keeps even the floating-point
/// fields deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrialTally {
    /// Pairs routed.
    pub attempted: u64,
    /// Pairs whose message reached the target.
    pub delivered: u64,
    /// Pairs dropped because no alive neighbour made progress.
    pub dropped: u64,
    /// Pairs that exceeded the hop limit (a protocol bug if strictly greedy).
    pub hop_limited: u64,
    /// Hop-count statistics over delivered messages.
    pub hop_stats: RunningStats,
    /// Largest observed hop count over delivered messages.
    pub max_hops: u32,
}

impl TrialTally {
    /// Folds `other` into this tally (the engine calls this in shard order).
    pub fn merge(&mut self, other: &TrialTally) {
        self.attempted += other.attempted;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.hop_limited += other.hop_limited;
        self.hop_stats.merge(&other.hop_stats);
        self.max_hops = self.max_hops.max(other.max_hops);
    }

    /// Records one route outcome.
    ///
    /// `SourceFailed` / `TargetFailed` cannot occur for pairs drawn among
    /// survivors and are counted as drops (with a debug assertion).
    pub fn record(&mut self, outcome: RouteOutcome) {
        self.attempted += 1;
        match outcome {
            RouteOutcome::Delivered { hops } => {
                self.delivered += 1;
                self.hop_stats.push(f64::from(hops));
                self.max_hops = self.max_hops.max(hops);
            }
            RouteOutcome::Dropped { .. } => self.dropped += 1,
            RouteOutcome::HopLimitExceeded { .. } => self.hop_limited += 1,
            RouteOutcome::SourceFailed | RouteOutcome::TargetFailed => {
                debug_assert!(false, "survivor pairs cannot have failed endpoints");
                self.dropped += 1;
            }
        }
    }

    /// Delivered fraction, 0 when nothing was attempted.
    #[must_use]
    pub fn routability(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }
}

/// A per-shard result the engine can fold in shard order — the seam that
/// lets [`TrialEngine::run_shards`] drive richer tallies (the campaign
/// engine's stuck-depth histograms) through the identical sharding scheme,
/// preserving the thread-count-invariance contract for every tally type.
pub(crate) trait ShardTally: Default + Clone + Send {
    /// Folds `other` into `self`; the engine always calls this in shard
    /// order.
    fn fold(&mut self, other: &Self);
}

impl ShardTally for TrialTally {
    fn fold(&mut self, other: &Self) {
        self.merge(other);
    }
}

/// Routes a trial's pair budget across scoped worker threads, bit-identically
/// for any thread count.
///
/// See the [module docs](self) for the sharding scheme. The engine is shared
/// by [`crate::StaticResilienceExperiment`], [`crate::ChurnExperiment`] and
/// (transitively) [`crate::sweep_failure_grid`]; use it directly when driving
/// a custom failure model:
///
/// ```rust
/// use dht_overlay::{CanOverlay, FailureMask, Overlay};
/// use dht_sim::TrialEngine;
///
/// let overlay = CanOverlay::build(8)?;
/// let mask = FailureMask::none(overlay.key_space());
/// let engine = TrialEngine::new(4);
/// let tally = engine
///     .run_trial(&overlay, &mask, 10_000, 7)
///     .expect("two survivors exist");
/// assert_eq!(tally.attempted, 10_000);
/// assert_eq!(tally.routability(), 1.0);
/// // Thread count never changes the numbers:
/// assert_eq!(
///     Some(tally),
///     TrialEngine::new(1).run_trial(&overlay, &mask, 10_000, 7)
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialEngine {
    threads: usize,
    pairs_per_shard: u64,
}

impl TrialEngine {
    /// Creates an engine running on up to `threads` scoped worker threads
    /// (clamped to `1..=256`), with the default shard size.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        TrialEngine {
            threads: threads.clamp(1, 256),
            pairs_per_shard: DEFAULT_PAIRS_PER_SHARD,
        }
    }

    /// Overrides the logical shard size (clamped to at least 1).
    ///
    /// The shard size partitions the pair budget across RNG streams, so two
    /// runs only reproduce each other when it matches; thread count, by
    /// contrast, never affects results.
    #[must_use]
    pub fn with_pairs_per_shard(mut self, pairs_per_shard: u64) -> Self {
        self.pairs_per_shard = pairs_per_shard.max(1);
        self
    }

    /// Worker threads the engine will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Pairs per logical shard.
    #[must_use]
    pub fn pairs_per_shard(&self) -> u64 {
        self.pairs_per_shard
    }

    /// Routes `pairs` source/destination pairs among the survivors of `mask`
    /// and returns the merged tally, or `None` when fewer than two nodes
    /// survive. A zero budget is clamped to one pair (a trial that measures
    /// nothing has no routability estimate).
    ///
    /// All pair randomness derives from `pair_seed` via per-shard
    /// [`SeedSequence`] streams; the result is a pure function of
    /// `(overlay, mask, pairs, pair_seed, pairs_per_shard)`.
    ///
    /// When the overlay exposes a compiled routing kernel
    /// ([`Overlay::kernel`]) the pairs are routed through its **batched
    /// lockstep path**: the mask is lowered into rank space once (memoized
    /// per mask generation), its bitset words are resolved once for the whole
    /// trial, and each shard draws its full pair budget in one call and
    /// routes it with up to a frontier's width of lookups in flight
    /// ([`RoutingKernel::route_batch`]). Batched outcomes are bit-identical
    /// per pair to the per-route kernel path, which is bit-identical to the
    /// scalar path (the `kernel_equivalence` and `batch_equivalence` suites
    /// prove it), and outcomes are recorded in draw order — so which path ran
    /// is not observable in the tally.
    pub fn run_trial<O>(
        &self,
        overlay: &O,
        mask: &FailureMask,
        pairs: u64,
        pair_seed: u64,
    ) -> Option<TrialTally>
    where
        O: Overlay + ?Sized,
    {
        let sampler = PairSampler::new(mask)?;
        // Batch-entry validation, hoisted: every pair the sampler yields
        // lives in the mask's key space, so the key-space checks the scalar
        // router would repeat per routed pair are paid once per trial here.
        let space = mask.key_space();
        assert_eq!(
            space.bits(),
            overlay.key_space().bits(),
            "mask is from a different key space than the overlay"
        );
        let hop_limit = default_route_hop_limit(overlay);
        let tally = if let Some(kernel) = overlay.kernel() {
            let lowered = kernel.compile_mask(mask);
            // Resolve the mask representation to its bitset words once
            // per trial; shards route against the bare slice.
            let words = lowered.words();
            self.run_shards(
                pairs,
                pair_seed,
                BatchScratch::new,
                |budget, rng, tally: &mut TrialTally, scratch: &mut BatchScratch| {
                    scratch.route_shard(kernel, words, &sampler, budget, hop_limit, rng);
                    // Draw order, not retirement order: the tally's
                    // floating-point hop statistics must fold exactly as
                    // the per-route path folds them.
                    for &outcome in &scratch.outcomes {
                        tally.record(outcome);
                    }
                },
            )
        } else if let Some(kernel) = overlay.implicit_kernel() {
            let lowered = kernel.compile_mask(mask);
            let words = lowered.words();
            self.run_shards(
                pairs,
                pair_seed,
                || ImplicitScratch::new(kernel),
                |budget, rng, tally: &mut TrialTally, scratch: &mut ImplicitScratch| {
                    scratch.route_shard(kernel, words, &sampler, budget, hop_limit, rng);
                    for &outcome in &scratch.outcomes {
                        tally.record(outcome);
                    }
                },
            )
        } else {
            self.run_shards(
                pairs,
                pair_seed,
                || (),
                |budget, rng, tally: &mut TrialTally, ()| {
                    for _ in 0..budget {
                        let (source, target) = sampler.sample_values(rng);
                        tally.record(route_prevalidated(
                            overlay,
                            space.wrap(source),
                            space.wrap(target),
                            mask,
                            hop_limit,
                        ));
                    }
                },
            )
        };
        Some(tally)
    }

    /// Runs the sharded pair budget, calling `run_shard_body` once per shard
    /// with the shard's budget, RNG, tally and the worker's reusable scratch,
    /// and merges the per-shard tallies in shard order (the
    /// thread-count-invariance contract lives here).
    ///
    /// `make_scratch` runs once per worker thread — a shard body that batches
    /// its routing reuses one frontier and pair buffer across every shard the
    /// worker executes. Scratch must not carry results between shards; the
    /// tally is the only output channel.
    ///
    /// Generic over the tally type so sibling engines (the campaign runner in
    /// [`crate::campaign`]) inherit the exact sharding scheme — same shard
    /// grid, same per-shard streams, same shard-order fold.
    pub(crate) fn run_shards<T, S, M, F>(
        &self,
        pairs: u64,
        pair_seed: u64,
        make_scratch: M,
        run_shard_body: F,
    ) -> T
    where
        T: ShardTally,
        M: Fn() -> S + Sync,
        F: Fn(u64, &mut ChaCha8Rng, &mut T, &mut S) + Sync,
    {
        let pairs = pairs.max(1);
        let shard_count = usize::try_from(pairs.div_ceil(self.pairs_per_shard))
            .expect("shard count fits in usize");
        let shard_seeds = SeedSequence::new(pair_seed);

        let run_shard = |shard: usize, scratch: &mut S| -> T {
            let mut rng = shard_seeds.child_rng(shard as u64);
            let budget = if shard + 1 == shard_count {
                pairs - self.pairs_per_shard * (shard_count as u64 - 1)
            } else {
                self.pairs_per_shard
            };
            let mut tally = T::default();
            run_shard_body(budget, &mut rng, &mut tally, scratch);
            tally
        };

        let threads = self.threads.min(shard_count);
        let mut merged = T::default();
        if threads <= 1 {
            let mut scratch = make_scratch();
            for shard in 0..shard_count {
                merged.fold(&run_shard(shard, &mut scratch));
            }
        } else {
            let mut tallies: Vec<T> = vec![T::default(); shard_count];
            let chunk = shard_count.div_ceil(threads);
            std::thread::scope(|scope| {
                for (worker, slots) in tallies.chunks_mut(chunk).enumerate() {
                    let run_shard = &run_shard;
                    let make_scratch = &make_scratch;
                    let base = worker * chunk;
                    scope.spawn(move || {
                        let mut scratch = make_scratch();
                        for (offset, slot) in slots.iter_mut().enumerate() {
                            *slot = run_shard(base + offset, &mut scratch);
                        }
                    });
                }
            });
            // Shard order, not completion order: keeps the floating-point
            // hop statistics identical for every thread count.
            for tally in &tallies {
                merged.fold(tally);
            }
        }
        merged
    }
}

/// Per-worker scratch of the batched kernel path: one routing frontier, one
/// pair buffer and one outcome buffer, reused across every shard the worker
/// executes — the engine's only allocations after the first shard.
pub(crate) struct BatchScratch {
    batch: RouteBatch,
    pairs: Vec<(u64, u64)>,
    /// The shard's outcomes in draw order after a
    /// [`BatchScratch::route_shard`] call; callers fold these into their
    /// tally of choice.
    pub(crate) outcomes: Vec<RouteOutcome>,
}

impl BatchScratch {
    pub(crate) fn new() -> Self {
        BatchScratch {
            batch: RouteBatch::default(),
            pairs: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// Routes one shard through the batched lockstep path: draw the whole
    /// budget (the identical RNG stream as per-pair draws), route it with a
    /// full frontier, and leave the outcomes in `self.outcomes` in draw
    /// order for the caller to record.
    pub(crate) fn route_shard(
        &mut self,
        kernel: &RoutingKernel,
        alive_words: &[u64],
        sampler: &PairSampler<'_>,
        budget: u64,
        hop_limit: u32,
        rng: &mut ChaCha8Rng,
    ) {
        sampler.sample_values_into(budget, rng, &mut self.pairs);
        kernel.route_batch(
            &mut self.batch,
            alive_words,
            &self.pairs,
            hop_limit,
            &mut self.outcomes,
        );
    }
}

/// Per-worker scratch of the implicit backend: the batched path's frontier
/// and buffers plus one [`ImplicitRowCache`] — row regeneration state stays
/// worker-local, so the shared kernel never synchronises and the engine's
/// resident set is bounded by threads × cache size, not the overlay size.
pub(crate) struct ImplicitScratch {
    batch: RouteBatch,
    cache: ImplicitRowCache,
    pairs: Vec<(u64, u64)>,
    pub(crate) outcomes: Vec<RouteOutcome>,
}

impl ImplicitScratch {
    pub(crate) fn new(kernel: &ImplicitKernel) -> Self {
        ImplicitScratch {
            batch: RouteBatch::default(),
            cache: kernel.row_cache(),
            pairs: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    /// The implicit counterpart of [`BatchScratch::route_shard`]: identical
    /// draw stream, identical lockstep admission, outcomes in draw order.
    pub(crate) fn route_shard(
        &mut self,
        kernel: &ImplicitKernel,
        alive_words: &[u64],
        sampler: &PairSampler<'_>,
        budget: u64,
        hop_limit: u32,
        rng: &mut ChaCha8Rng,
    ) {
        sampler.sample_values_into(budget, rng, &mut self.pairs);
        kernel.route_batch(
            &mut self.batch,
            &mut self.cache,
            alive_words,
            &self.pairs,
            hop_limit,
            &mut self.outcomes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_id::KeySpace;
    use dht_overlay::{CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn intact_overlay_delivers_everything() {
        let overlay = CanOverlay::build(8).unwrap();
        let mask = FailureMask::none(overlay.key_space());
        let tally = TrialEngine::new(2)
            .run_trial(&overlay, &mask, 5_000, 3)
            .unwrap();
        assert_eq!(tally.attempted, 5_000);
        assert_eq!(tally.delivered, 5_000);
        assert_eq!(tally.dropped, 0);
        assert_eq!(tally.hop_limited, 0);
        assert_eq!(tally.routability(), 1.0);
        assert_eq!(tally.hop_stats.count(), 5_000);
        assert!(tally.max_hops <= 8);
    }

    #[test]
    fn results_are_invariant_under_thread_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let overlay = KademliaOverlay::build(9, &mut rng).unwrap();
        let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
        let reference = TrialEngine::new(1).run_trial(&overlay, &mask, 10_000, 11);
        for threads in [2, 3, 4, 7, 16] {
            let tally = TrialEngine::new(threads).run_trial(&overlay, &mask, 10_000, 11);
            assert_eq!(reference, tally, "threads = {threads}");
        }
    }

    #[test]
    fn shard_size_is_part_of_the_configuration() {
        let overlay = ChordOverlay::build(8, ChordVariant::Deterministic).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mask = FailureMask::sample(overlay.key_space(), 0.2, &mut rng);
        let small = TrialEngine::new(2)
            .with_pairs_per_shard(128)
            .run_trial(&overlay, &mask, 2_000, 1)
            .unwrap();
        let large = TrialEngine::new(2)
            .with_pairs_per_shard(1 << 20)
            .run_trial(&overlay, &mask, 2_000, 1)
            .unwrap();
        assert_eq!(small.attempted, 2_000);
        assert_eq!(large.attempted, 2_000);
        // Different shard grids draw different streams — documented, loud.
        assert_ne!(small, large);
        // But each grid is itself thread-invariant.
        assert_eq!(
            Some(small),
            TrialEngine::new(7)
                .with_pairs_per_shard(128)
                .run_trial(&overlay, &mask, 2_000, 1)
        );
    }

    /// Hides an overlay's compiled kernel so the engine takes the scalar
    /// path: the two paths must tally identically.
    struct ScalarOnly<'o, O: Overlay + ?Sized>(&'o O);

    impl<O: Overlay + ?Sized> Overlay for ScalarOnly<'_, O> {
        fn geometry_name(&self) -> &'static str {
            self.0.geometry_name()
        }
        fn population(&self) -> &dht_id::Population {
            self.0.population()
        }
        fn neighbors(&self, node: dht_id::NodeId) -> &[dht_id::NodeId] {
            self.0.neighbors(node)
        }
        fn next_hop(
            &self,
            current: dht_id::NodeId,
            target: dht_id::NodeId,
            alive: &FailureMask,
        ) -> Option<dht_id::NodeId> {
            self.0.next_hop(current, target, alive)
        }
        // kernel() deliberately left at the default None.
    }

    /// The kernel arm now routes every shard through the lockstep batch, so
    /// this is the engine-level batched-vs-scalar equality contract: same
    /// pairs, same RNG streams, bit-identical tallies (including the
    /// order-sensitive floating-point hop statistics).
    #[test]
    fn kernel_path_tallies_identically_to_the_scalar_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let overlays: Vec<Box<dyn Overlay>> = vec![
            Box::new(ChordOverlay::build(9, ChordVariant::Deterministic).unwrap()),
            Box::new(KademliaOverlay::build(9, &mut rng).unwrap()),
            Box::new(CanOverlay::build(9).unwrap()),
        ];
        for overlay in &overlays {
            assert!(overlay.kernel().is_some(), "geometries compile kernels");
            let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
            let engine = TrialEngine::new(3);
            let with_kernel = engine.run_trial(overlay.as_ref(), &mask, 8_000, 13);
            let scalar = engine.run_trial(&ScalarOnly(overlay.as_ref()), &mask, 8_000, 13);
            assert_eq!(
                with_kernel,
                scalar,
                "kernel and scalar paths diverge on {}",
                overlay.geometry_name()
            );
        }
    }

    /// The implicit arm must reproduce the materialized kernel arm exactly:
    /// same stream seed, same mask, same pair seed → bit-identical tallies
    /// (the backend is not observable in the numbers).
    #[test]
    fn implicit_path_tallies_identically_to_the_materialized_path() {
        use dht_overlay::{ImplicitOverlay, PlaxtonOverlay};

        let stream_seed = 41;
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mask = FailureMask::sample(KeySpace::new(10).unwrap(), 0.3, &mut rng);
        let engine = TrialEngine::new(3);

        let materialized =
            ChordOverlay::build_randomized(10, &mut ChaCha8Rng::seed_from_u64(stream_seed))
                .unwrap();
        let implicit = ImplicitOverlay::ring(10, ChordVariant::Randomized, stream_seed).unwrap();
        assert!(implicit.kernel().is_none() && implicit.implicit_kernel().is_some());
        assert_eq!(
            engine.run_trial(&materialized, &mask, 6_000, 23),
            engine.run_trial(&implicit, &mask, 6_000, 23),
        );

        let materialized =
            PlaxtonOverlay::build(10, &mut ChaCha8Rng::seed_from_u64(stream_seed)).unwrap();
        let implicit = ImplicitOverlay::tree(10, stream_seed).unwrap();
        assert_eq!(
            engine.run_trial(&materialized, &mask, 6_000, 23),
            engine.run_trial(&implicit, &mask, 6_000, 23),
        );
    }

    #[test]
    fn implicit_path_is_invariant_under_thread_count() {
        use dht_overlay::ImplicitOverlay;

        let overlay = ImplicitOverlay::xor(10, 29).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
        let reference = TrialEngine::new(1).run_trial(&overlay, &mask, 10_000, 11);
        for threads in [2, 5, 16] {
            assert_eq!(
                reference,
                TrialEngine::new(threads).run_trial(&overlay, &mask, 10_000, 11),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn too_few_survivors_yields_none() {
        let overlay = CanOverlay::build(4).unwrap();
        let space = overlay.key_space();
        let mask = FailureMask::from_failed_nodes(space, (1..16).map(|v| space.wrap(v)));
        assert!(TrialEngine::new(2)
            .run_trial(&overlay, &mask, 100, 0)
            .is_none());
    }

    #[test]
    fn partial_last_shard_is_exact() {
        let overlay = CanOverlay::build(6).unwrap();
        let mask = FailureMask::none(overlay.key_space());
        // 3 full shards of 100 plus a final shard of 1.
        let tally = TrialEngine::new(2)
            .with_pairs_per_shard(100)
            .run_trial(&overlay, &mask, 301, 5)
            .unwrap();
        assert_eq!(tally.attempted, 301);
    }

    #[test]
    fn tallies_merge_like_concatenation() {
        let mut a = TrialTally::default();
        let mut b = TrialTally::default();
        let space = KeySpace::new(4).unwrap();
        a.record(RouteOutcome::Delivered { hops: 3 });
        a.record(RouteOutcome::Dropped {
            hops: 1,
            stuck_at: space.wrap(2),
        });
        b.record(RouteOutcome::Delivered { hops: 7 });
        b.record(RouteOutcome::HopLimitExceeded { limit: 64 });
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.attempted, 4);
        assert_eq!(merged.delivered, 2);
        assert_eq!(merged.dropped, 1);
        assert_eq!(merged.hop_limited, 1);
        assert_eq!(merged.max_hops, 7);
        assert_eq!(merged.hop_stats.count(), 2);
        assert!((merged.hop_stats.mean() - 5.0).abs() < 1e-12);
        assert!((merged.routability() - 0.5).abs() < 1e-12);
    }
}
