//! The static-resilience experiment: measure routability on an executable
//! overlay under a frozen failure pattern.

use crate::config::StaticResilienceConfig;
use crate::engine::TrialEngine;
use crate::rng::SeedSequence;
use dht_mathkit::stats::{wilson_interval, ConfidenceInterval, RunningStats};
use dht_overlay::{FailureMask, Overlay};
use serde::{Deserialize, Serialize};

/// Aggregated outcome of a static-resilience measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticResilienceResult {
    /// Geometry name of the overlay measured.
    pub geometry: String,
    /// Identifier length of the overlay.
    pub bits: u32,
    /// Failure probability applied.
    pub failure_probability: f64,
    /// Number of occupied identifiers in the overlay's population (`2^bits`
    /// for fully populated overlays).
    pub occupied_nodes: u64,
    /// Number of trials (independent failure patterns) averaged.
    pub trials: u32,
    /// Total pairs attempted across all trials.
    pub pairs_attempted: u64,
    /// Pairs delivered across all trials.
    pub pairs_delivered: u64,
    /// Measured routability: delivered / attempted.
    pub routability: f64,
    /// Percentage of failed paths, `100·(1 − routability)` (Fig. 6 y-axis).
    pub failed_path_percent: f64,
    /// 95% Wilson confidence interval on the routability.
    pub confidence: ConfidenceInterval,
    /// Mean number of hops over delivered messages.
    pub mean_hops: f64,
    /// Largest observed hop count over delivered messages.
    pub max_hops: u32,
    /// Fraction of surviving nodes averaged over trials.
    pub surviving_fraction: f64,
}

/// Runs static-resilience measurements according to a
/// [`StaticResilienceConfig`].
///
/// Each trial samples a fresh failure pattern over the overlay's
/// [`dht_id::Population`] (only occupied identifiers fail or survive) and
/// hands its pair budget to the sharded [`TrialEngine`], which splits it
/// across the configured number of worker threads. Sharding is by fixed
/// logical shards with per-shard RNG streams, so the result is **bit
/// identical for every thread count** — `with_threads(1)` and
/// `with_threads(64)` produce the same `StaticResilienceResult`.
#[derive(Debug, Clone)]
pub struct StaticResilienceExperiment {
    config: StaticResilienceConfig,
}

impl StaticResilienceExperiment {
    /// Creates an experiment runner for the given configuration.
    #[must_use]
    pub fn new(config: StaticResilienceConfig) -> Self {
        StaticResilienceExperiment { config }
    }

    /// The configuration this runner executes.
    #[must_use]
    pub fn config(&self) -> &StaticResilienceConfig {
        &self.config
    }

    /// Measures the overlay.
    ///
    /// Trials in which fewer than two nodes survive are skipped (they
    /// contribute no pairs); if every trial is skipped the result reports zero
    /// attempted pairs and a routability of zero.
    pub fn run<O>(&self, overlay: &O) -> StaticResilienceResult
    where
        O: Overlay + ?Sized,
    {
        let q = self.config.failure_probability();
        let seeds = SeedSequence::new(self.config.seed());
        let engine = TrialEngine::new(self.config.threads());
        let mut delivered = 0u64;
        let mut attempted = 0u64;
        let mut hop_stats = RunningStats::new();
        let mut max_hops = 0u32;
        let mut surviving_fraction_stats = RunningStats::new();

        for trial in 0..self.config.trials() {
            // Child stream 2t seeds the failure pattern (unchanged from the
            // seed implementation); child seed 2t+1 roots the trial's
            // per-shard pair streams.
            let mut failure_rng = seeds.child_rng(u64::from(trial) * 2);
            let pair_seed = seeds.child(u64::from(trial) * 2 + 1);
            let mask = FailureMask::sample_over(overlay.population(), q, &mut failure_rng);
            surviving_fraction_stats
                .push(mask.alive_count() as f64 / overlay.population().node_count() as f64);
            let Some(tally) = engine.run_trial(overlay, &mask, self.config.pairs(), pair_seed)
            else {
                continue;
            };
            attempted += tally.attempted;
            delivered += tally.delivered;
            hop_stats.merge(&tally.hop_stats);
            max_hops = max_hops.max(tally.max_hops);
        }

        let routability = if attempted == 0 {
            0.0
        } else {
            delivered as f64 / attempted as f64
        };
        let confidence = if attempted == 0 {
            ConfidenceInterval {
                mean: 0.0,
                lower: 0.0,
                upper: 0.0,
                level: 0.95,
            }
        } else {
            wilson_interval(delivered, attempted, 0.95)
        };
        StaticResilienceResult {
            geometry: overlay.geometry_name().to_owned(),
            bits: overlay.key_space().bits(),
            failure_probability: q,
            occupied_nodes: overlay.population().node_count(),
            trials: self.config.trials(),
            pairs_attempted: attempted,
            pairs_delivered: delivered,
            routability,
            failed_path_percent: 100.0 * (1.0 - routability),
            confidence,
            mean_hops: hop_stats.mean(),
            max_hops,
            surviving_fraction: surviving_fraction_stats.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::{CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay, PlaxtonOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn config(q: f64) -> StaticResilienceConfig {
        StaticResilienceConfig::new(q)
            .unwrap()
            .with_pairs(2_000)
            .with_seed(17)
    }

    #[test]
    fn no_failures_means_perfect_routability() {
        let overlay = CanOverlay::build(8).unwrap();
        let result = StaticResilienceExperiment::new(config(0.0)).run(&overlay);
        assert_eq!(result.routability, 1.0);
        assert_eq!(result.failed_path_percent, 0.0);
        assert_eq!(result.pairs_delivered, result.pairs_attempted);
        assert!(result.mean_hops > 0.0 && result.mean_hops <= 8.0);
        assert_eq!(result.surviving_fraction, 1.0);
    }

    #[test]
    fn results_are_reproducible_for_a_seed() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let overlay = KademliaOverlay::build(9, &mut rng).unwrap();
        let a = StaticResilienceExperiment::new(config(0.3)).run(&overlay);
        let b = StaticResilienceExperiment::new(config(0.3)).run(&overlay);
        assert_eq!(a, b);
    }

    #[test]
    fn multithreaded_run_is_bit_identical_to_single_threaded() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let overlay = KademliaOverlay::build(9, &mut rng).unwrap();
        let single = StaticResilienceExperiment::new(config(0.3).with_threads(1)).run(&overlay);
        for threads in [2, 4, 13] {
            let multi =
                StaticResilienceExperiment::new(config(0.3).with_threads(threads)).run(&overlay);
            // Full structural equality: every field, including the
            // floating-point hop statistics, matches bit for bit.
            assert_eq!(single, multi, "threads = {threads}");
        }
    }

    #[test]
    fn tree_is_less_resilient_than_xor_in_simulation() {
        // The headline qualitative claim of Fig. 6(a), measured end to end.
        let seed = 23;
        let tree = PlaxtonOverlay::build(10, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let xor = KademliaOverlay::build(10, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap();
        let experiment = StaticResilienceExperiment::new(config(0.3));
        let tree_result = experiment.run(&tree);
        let xor_result = experiment.run(&xor);
        assert!(
            tree_result.routability < xor_result.routability,
            "tree {} vs xor {}",
            tree_result.routability,
            xor_result.routability
        );
    }

    #[test]
    fn higher_failure_probability_lowers_routability() {
        let overlay = ChordOverlay::build(10, ChordVariant::Deterministic).unwrap();
        let low = StaticResilienceExperiment::new(config(0.1)).run(&overlay);
        let high = StaticResilienceExperiment::new(config(0.5)).run(&overlay);
        assert!(high.routability < low.routability);
        assert!(low.confidence.contains(low.routability));
        assert!(high.surviving_fraction < low.surviving_fraction);
    }

    #[test]
    fn extreme_failure_probability_yields_no_survivable_pairs_gracefully() {
        let overlay = CanOverlay::build(4).unwrap();
        let experiment = StaticResilienceExperiment::new(
            StaticResilienceConfig::new(0.999)
                .unwrap()
                .with_pairs(100)
                .with_seed(3),
        );
        let result = experiment.run(&overlay);
        // With 16 nodes at q = 0.999 most trials have < 2 survivors; whatever
        // pairs exist must still produce a well-formed result.
        assert!(result.routability >= 0.0 && result.routability <= 1.0);
        assert!(result.failed_path_percent >= 0.0);
    }

    #[test]
    fn sparse_populations_measure_routability_among_occupied_nodes() {
        use dht_id::{KeySpace, Population};
        let space = KeySpace::new(12).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let population = Population::sample_uniform(space, 1 << 10, &mut rng).unwrap();
        let overlay = ChordOverlay::build_over(
            population,
            dht_overlay::ChordVariant::Deterministic,
            &mut rng,
        )
        .unwrap();
        let intact = StaticResilienceExperiment::new(config(0.0)).run(&overlay);
        assert_eq!(intact.occupied_nodes, 1 << 10);
        assert_eq!(intact.routability, 1.0, "intact sparse ring routes fully");
        assert_eq!(intact.surviving_fraction, 1.0);
        let failed = StaticResilienceExperiment::new(config(0.3)).run(&overlay);
        assert!(failed.routability < 1.0);
        assert!((failed.surviving_fraction - 0.7).abs() < 0.1);
    }

    #[test]
    fn multiple_trials_average_over_failure_patterns() {
        let overlay = CanOverlay::build(8).unwrap();
        let single = StaticResilienceExperiment::new(config(0.4).with_trials(1)).run(&overlay);
        let averaged = StaticResilienceExperiment::new(config(0.4).with_trials(5)).run(&overlay);
        assert_eq!(averaged.trials, 5);
        assert_eq!(averaged.pairs_attempted, 5 * single.pairs_attempted);
        // More data tightens the confidence interval.
        assert!(averaged.confidence.half_width() <= single.confidence.half_width());
    }
}
