//! Deterministic seed derivation.
//!
//! Every experiment in this workspace must be reproducible from a single
//! master seed. [`SeedSequence`] derives independent child seeds for the
//! different sources of randomness (overlay construction, failure pattern,
//! pair sampling, per-trial splits) using SplitMix64, so adding a consumer
//! never perturbs the streams of existing ones.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Derives independent child seeds from a master seed.
///
/// # Example
///
/// ```rust
/// use dht_sim::SeedSequence;
///
/// let seq = SeedSequence::new(42);
/// let a = seq.child(0);
/// let b = seq.child(1);
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).child(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the `index`-th child seed (SplitMix64 of `master + index + 1`).
    #[must_use]
    pub fn child(&self, index: u64) -> u64 {
        splitmix64(self.master.wrapping_add(index).wrapping_add(1))
    }

    /// Convenience: a seeded ChaCha RNG for the `index`-th child stream.
    #[must_use]
    pub fn child_rng(&self, index: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.child(index))
    }
}

/// SplitMix64 finaliser — a well-mixed 64-bit permutation.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn children_are_distinct_and_stable() {
        let seq = SeedSequence::new(7);
        let seeds: Vec<u64> = (0..100).map(|i| seq.child(i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "child seeds must be distinct");
        assert_eq!(seq.child(5), SeedSequence::new(7).child(5));
        assert_eq!(seq.master(), 7);
    }

    #[test]
    fn different_masters_give_different_streams() {
        assert_ne!(SeedSequence::new(1).child(0), SeedSequence::new(2).child(0));
    }

    #[test]
    fn child_rng_is_reproducible() {
        let mut a = SeedSequence::new(3).child_rng(4);
        let mut b = SeedSequence::new(3).child_rng(4);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_mixes_consecutive_inputs() {
        // Consecutive inputs must produce outputs differing in many bits.
        let a = splitmix64(100);
        let b = splitmix64(101);
        assert!((a ^ b).count_ones() > 10);
    }
}
