//! Failure-probability sweeps over an overlay (the simulated curves of
//! Fig. 6).

use crate::config::{SimError, StaticResilienceConfig};
use crate::rng::SeedSequence;
use crate::static_resilience::{StaticResilienceExperiment, StaticResilienceResult};
use dht_overlay::Overlay;
use serde::{Deserialize, Serialize};

/// One measured point of a failure-probability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSweepPoint {
    /// The failure probability of this grid point.
    pub failure_probability: f64,
    /// The measured result.
    pub result: StaticResilienceResult,
}

/// Measures the overlay at every failure probability of `grid`, using
/// `base_config` for the pair count, trial count, seed and threading.
///
/// The seed of grid point `k` is child `k` of a [`SeedSequence`] rooted at
/// the base seed — the repository-wide convention for deriving per-point
/// seeds from one root (live-churn grids use the same rule), so grids that
/// share a root seed never share or correlate per-point RNG streams. The
/// whole sweep is reproducible while points remain independent
/// — which is also what lets the points run concurrently: grid points are
/// measured on scoped threads (the overlay is only read), batched so that
/// concurrent points times the per-point [`crate::TrialEngine`] workers
/// (`base_config.threads()`) stay within
/// [`std::thread::available_parallelism`]. Batches are a barrier (a batch
/// waits for its slowest point); for the short grids the experiments use
/// that costs little and keeps the code queue-free. The returned points are
/// in grid order regardless of completion order, and — like every
/// engine-backed measurement — bit-identical for any thread budget.
///
/// # Errors
///
/// Returns [`SimError::InvalidFailureProbability`] if a grid value is outside
/// `[0, 1)`; the whole grid is validated before any measurement starts.
///
/// # Example
///
/// ```rust
/// use dht_overlay::CanOverlay;
/// use dht_sim::{sweep_failure_grid, StaticResilienceConfig};
///
/// let overlay = CanOverlay::build(8)?;
/// let config = StaticResilienceConfig::new(0.0)?.with_pairs(500).with_seed(1);
/// let points = sweep_failure_grid(&overlay, &config, &[0.0, 0.2, 0.4])?;
/// assert_eq!(points.len(), 3);
/// assert!(points[0].result.routability >= points[2].result.routability);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sweep_failure_grid<O>(
    overlay: &O,
    base_config: &StaticResilienceConfig,
    grid: &[f64],
) -> Result<Vec<FailureSweepPoint>, SimError>
where
    O: Overlay + Sync + ?Sized,
{
    let seeds = SeedSequence::new(base_config.seed());
    let configs = grid
        .iter()
        .enumerate()
        .map(|(index, &q)| {
            Ok(StaticResilienceConfig::new(q)?
                .with_pairs(base_config.pairs())
                .with_trials(base_config.trials())
                .with_threads(base_config.threads())
                .with_seed(seeds.child(index as u64)))
        })
        .collect::<Result<Vec<_>, SimError>>()?;
    // Each point may itself spawn `threads()` routing workers, so budget the
    // concurrent points such that points × inner workers ≈ the core count.
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let max_in_flight = (cores / base_config.threads().max(1)).max(1);
    let mut results: Vec<StaticResilienceResult> = Vec::with_capacity(configs.len());
    for batch in configs.chunks(max_in_flight) {
        let batch_results: Vec<StaticResilienceResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .iter()
                .map(|&config| {
                    scope.spawn(move || StaticResilienceExperiment::new(config).run(overlay))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("sweep worker panicked"))
                .collect()
        });
        results.extend(batch_results);
    }
    Ok(grid
        .iter()
        .zip(results)
        .map(|(&q, result)| FailureSweepPoint {
            failure_probability: q,
            result,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::{CanOverlay, KademliaOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sweep_produces_one_point_per_grid_value() {
        let overlay = CanOverlay::build(8).unwrap();
        let config = StaticResilienceConfig::new(0.0)
            .unwrap()
            .with_pairs(300)
            .with_seed(5);
        let grid = [0.0, 0.1, 0.3, 0.5];
        let points = sweep_failure_grid(&overlay, &config, &grid).unwrap();
        assert_eq!(points.len(), 4);
        for (point, &q) in points.iter().zip(grid.iter()) {
            assert_eq!(point.failure_probability, q);
            assert_eq!(point.result.failure_probability, q);
        }
    }

    #[test]
    fn measured_routability_is_monotone_on_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let overlay = KademliaOverlay::build(10, &mut rng).unwrap();
        let config = StaticResilienceConfig::new(0.0)
            .unwrap()
            .with_pairs(2_000)
            .with_seed(9);
        let points = sweep_failure_grid(&overlay, &config, &[0.0, 0.3, 0.6]).unwrap();
        assert!(points[0].result.routability >= points[1].result.routability);
        assert!(points[1].result.routability >= points[2].result.routability);
    }

    #[test]
    fn concurrent_sweep_is_deterministic_and_ordered() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let overlay = KademliaOverlay::build(9, &mut rng).unwrap();
        let config = StaticResilienceConfig::new(0.0)
            .unwrap()
            .with_pairs(500)
            .with_seed(3);
        let grid = [0.5, 0.1, 0.3, 0.0];
        let a = sweep_failure_grid(&overlay, &config, &grid).unwrap();
        let b = sweep_failure_grid(&overlay, &config, &grid).unwrap();
        assert_eq!(a, b, "per-point seeding keeps the sweep reproducible");
        let order: Vec<f64> = a.iter().map(|p| p.failure_probability).collect();
        assert_eq!(order, grid, "points come back in grid order");
    }

    #[test]
    fn invalid_grid_values_are_rejected() {
        let overlay = CanOverlay::build(6).unwrap();
        let config = StaticResilienceConfig::new(0.0).unwrap();
        assert!(sweep_failure_grid(&overlay, &config, &[0.2, 1.0]).is_err());
    }
}
