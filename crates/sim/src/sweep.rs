//! Failure-probability sweeps over an overlay (the simulated curves of
//! Fig. 6).

use crate::config::{SimError, StaticResilienceConfig};
use crate::static_resilience::{StaticResilienceExperiment, StaticResilienceResult};
use dht_overlay::Overlay;
use serde::{Deserialize, Serialize};

/// One measured point of a failure-probability sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureSweepPoint {
    /// The failure probability of this grid point.
    pub failure_probability: f64,
    /// The measured result.
    pub result: StaticResilienceResult,
}

/// Measures the overlay at every failure probability of `grid`, using
/// `base_config` for the pair count, trial count, seed and threading.
///
/// The seed of each grid point is derived from the base seed and the grid
/// index, so the whole sweep is reproducible while points remain independent.
///
/// # Errors
///
/// Returns [`SimError::InvalidFailureProbability`] if a grid value is outside
/// `[0, 1)`.
///
/// # Example
///
/// ```rust
/// use dht_overlay::CanOverlay;
/// use dht_sim::{sweep_failure_grid, StaticResilienceConfig};
///
/// let overlay = CanOverlay::build(8)?;
/// let config = StaticResilienceConfig::new(0.0)?.with_pairs(500).with_seed(1);
/// let points = sweep_failure_grid(&overlay, &config, &[0.0, 0.2, 0.4])?;
/// assert_eq!(points.len(), 3);
/// assert!(points[0].result.routability >= points[2].result.routability);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sweep_failure_grid<O>(
    overlay: &O,
    base_config: &StaticResilienceConfig,
    grid: &[f64],
) -> Result<Vec<FailureSweepPoint>, SimError>
where
    O: Overlay + Sync + ?Sized,
{
    let mut points = Vec::with_capacity(grid.len());
    for (index, &q) in grid.iter().enumerate() {
        let config = StaticResilienceConfig::new(q)?
            .with_pairs(base_config.pairs())
            .with_trials(base_config.trials())
            .with_threads(base_config.threads())
            .with_seed(base_config.seed().wrapping_add(index as u64 * 7919));
        let result = StaticResilienceExperiment::new(config).run(overlay);
        points.push(FailureSweepPoint {
            failure_probability: q,
            result,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dht_overlay::{CanOverlay, KademliaOverlay};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sweep_produces_one_point_per_grid_value() {
        let overlay = CanOverlay::build(8).unwrap();
        let config = StaticResilienceConfig::new(0.0)
            .unwrap()
            .with_pairs(300)
            .with_seed(5);
        let grid = [0.0, 0.1, 0.3, 0.5];
        let points = sweep_failure_grid(&overlay, &config, &grid).unwrap();
        assert_eq!(points.len(), 4);
        for (point, &q) in points.iter().zip(grid.iter()) {
            assert_eq!(point.failure_probability, q);
            assert_eq!(point.result.failure_probability, q);
        }
    }

    #[test]
    fn measured_routability_is_monotone_on_average() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let overlay = KademliaOverlay::build(10, &mut rng).unwrap();
        let config = StaticResilienceConfig::new(0.0)
            .unwrap()
            .with_pairs(2_000)
            .with_seed(9);
        let points = sweep_failure_grid(&overlay, &config, &[0.0, 0.3, 0.6]).unwrap();
        assert!(points[0].result.routability >= points[1].result.routability);
        assert!(points[1].result.routability >= points[2].result.routability);
    }

    #[test]
    fn invalid_grid_values_are_rejected() {
        let overlay = CanOverlay::build(6).unwrap();
        let config = StaticResilienceConfig::new(0.0).unwrap();
        assert!(sweep_failure_grid(&overlay, &config, &[0.2, 1.0]).is_err());
    }
}
