//! The batch runner: execute a directory of spec files reproducibly.

use dht_experiments::output::{ReportMode, ReportWriter};
use dht_experiments::spec::{run_spec, Backend, ExecutionSpec, ScenarioSpec, SpecError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Options for [`run_directory`].
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Where reports (and the manifest) are written.
    pub output_dir: PathBuf,
    /// Thread-budget override applied to every spec (results are identical
    /// for any value — the engines are thread-count invariant).
    pub threads: Option<usize>,
    /// Routing-table-backend override applied to every spec (results are
    /// identical either way — the backends are bit-identical wherever both
    /// can run — so, like `threads`, this never changes a report or its
    /// hash).
    pub backend: Option<Backend>,
    /// Report serialization mode.
    pub mode: ReportMode,
}

impl BatchOptions {
    /// Compact-mode options writing to `output_dir`.
    #[must_use]
    pub fn new(output_dir: impl Into<PathBuf>) -> Self {
        BatchOptions {
            output_dir: output_dir.into(),
            threads: None,
            backend: None,
            mode: ReportMode::Compact,
        }
    }
}

/// One row of the batch manifest: which spec file produced which report —
/// or, for a spec that failed to parse, validate or run, what went wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchEntry {
    /// Spec file name (relative to the spec directory).
    pub file: String,
    /// The spec's name label (empty when the file never parsed).
    pub name: String,
    /// The spec's family name (empty when the file never parsed).
    pub family: String,
    /// The spec's canonical content hash (hex; empty when the file never
    /// parsed).
    pub spec_hash: String,
    /// Report file name (relative to the output directory; empty for
    /// failed entries).
    pub report: String,
    /// `None` for a successful run; `Some(message)` when this spec file
    /// failed — the rest of the batch still ran.
    pub error: Option<String>,
}

impl BatchEntry {
    /// A failure row: best-effort identification plus the error message.
    fn failed(file: String, spec: Option<&ScenarioSpec>, error: &SpecError) -> Self {
        BatchEntry {
            file,
            name: spec.map(|spec| spec.name.clone()).unwrap_or_default(),
            family: spec
                .map(|spec| spec.family().name().to_owned())
                .unwrap_or_default(),
            spec_hash: spec.map(ScenarioSpec::content_hash_hex).unwrap_or_default(),
            report: String::new(),
            error: Some(error.to_string()),
        }
    }
}

/// Runs every `*.json` spec in `spec_dir` (sorted by file name, so the
/// batch order — and therefore the manifest — is reproducible), writes one
/// report per spec plus a `manifest.json`, and returns the manifest rows.
///
/// Every report is a pure function of its spec: no timestamps, no
/// environment, and thread-count-invariant engines — so two runs of the
/// same directory produce byte-identical output trees regardless of the
/// thread budget.
///
/// A spec file that fails to parse, validate or run does **not** abort the
/// batch: its manifest row carries the error message (and no report), and
/// every other spec still runs. Callers decide whether a partly-failed
/// batch is fatal by scanning [`BatchEntry::error`].
///
/// # Errors
///
/// Returns [`SpecError`] only on batch-level I/O failures (listing the spec
/// directory, writing reports or the manifest); per-file failures are
/// collected, not returned.
pub fn run_directory(
    spec_dir: &Path,
    options: &BatchOptions,
) -> Result<Vec<BatchEntry>, SpecError> {
    let mut spec_files: Vec<PathBuf> = std::fs::read_dir(spec_dir)
        .map_err(|err| SpecError::Io(format!("reading {}: {err}", spec_dir.display())))?
        .filter_map(|entry| entry.ok().map(|entry| entry.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .collect();
    spec_files.sort();

    let writer = ReportWriter::new(&options.output_dir).with_mode(options.mode);
    let mut manifest = Vec::with_capacity(spec_files.len());
    for path in &spec_files {
        let file = path
            .file_name()
            .map(|name| name.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = std::fs::read_to_string(path)
            .map_err(|err| SpecError::Io(format!("reading {}: {err}", path.display())))?;
        let mut spec = match ScenarioSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(err) => {
                let err = SpecError::Invalid(format!("{}: {err}", path.display()));
                manifest.push(BatchEntry::failed(file, None, &err));
                continue;
            }
        };
        if let Some(backend) = options.backend {
            spec.execution = Some(ExecutionSpec {
                threads: spec.threads(),
                backend,
            });
        }
        let outcome = match run_spec(&spec, options.threads) {
            Ok(outcome) => outcome,
            Err(err) => {
                manifest.push(BatchEntry::failed(file, Some(&spec), &err));
                continue;
            }
        };
        let report_path = writer.write_report(&outcome.report)?;
        if let Some(records) = &outcome.csv_records {
            writer.write_csv(records, &outcome.report.name)?;
        }
        manifest.push(BatchEntry {
            file,
            name: outcome.report.name.clone(),
            family: outcome.report.family.clone(),
            spec_hash: outcome.report.spec_hash.clone(),
            report: report_path
                .file_name()
                .map(|name| name.to_string_lossy().into_owned())
                .unwrap_or_default(),
            error: None,
        });
    }
    writer.write_json(&manifest, "manifest")?;
    Ok(manifest)
}
