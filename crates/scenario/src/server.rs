//! The memoizing report server: a persistent line-delimited-JSON service
//! answering spec queries from caches wherever possible.
//!
//! ## Wire protocol
//!
//! One JSON request envelope per line, one JSON response per line:
//!
//! ```text
//! → {"id": 1, "request": {"Query": {"query": {"geometry": "ring", "bits": 10, "failure_probability": 0.3}}}}
//! ← {"id": 1, "ok": {"schema": "dht-scenario-report/v1", ...}}
//! → {"id": 2, "request": "Stats"}
//! ← {"id": 2, "ok": {"requests": 1, "report_hits": 0, ...}}
//! ```
//!
//! Errors come back as `{"id": N, "err": "message"}`. Responses to
//! identical report requests are spliced from the memo table verbatim, so
//! they are byte-identical — the cache key is the spec's canonical content
//! hash, which ignores the `name` label and thread budget but nothing else.

use crate::cache::{OverlayCache, ServerStats};
use dht_experiments::spec::{
    run_spec, static_resilience_report_with, Backend, ExecutionSpec, ExperimentSpec,
    ScenarioReport, ScenarioSpec, SpecError, REPORT_SCHEMA,
};
use dht_markov::ChainCache;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;

/// The sugar form of the server's core question: "N (= 2^bits), geometry,
/// q → resilience + scalability report". Desugars to a canonical
/// [`ExperimentSpec::StaticResilience`] spec, so two clients asking the
/// same question hit the same cache entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Geometry name (`ring`, `xor`, `tree`, `hypercube`, `symphony`).
    pub geometry: String,
    /// Identifier length (`N = 2^bits`).
    pub bits: u32,
    /// Node failure probability `q`.
    pub failure_probability: f64,
    /// Source/destination pairs (default 20 000, the paper's Fig. 6 budget).
    pub pairs: Option<u64>,
    /// Independent failure patterns averaged (default 1).
    pub trials: Option<u32>,
    /// Root seed (default 2006).
    pub seed: Option<u64>,
    /// Routing-table backend (default materialized). The backend never
    /// enters the cache key — both backends answer byte-identically — so an
    /// implicit query can be answered from a materialized memo and vice
    /// versa.
    pub backend: Option<Backend>,
}

impl Query {
    /// The canonical spec this query desugars to.
    #[must_use]
    pub fn to_spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::static_resilience(
            &self.geometry,
            self.bits,
            self.failure_probability,
            self.pairs.unwrap_or(20_000),
            self.trials.unwrap_or(1),
            self.seed.unwrap_or(2006),
        );
        if let Some(backend) = self.backend {
            spec.execution = Some(ExecutionSpec {
                threads: 1,
                backend,
            });
        }
        spec
    }
}

/// A request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Run (or recall) a full spec and return its report.
    Report {
        /// The spec to answer.
        spec: ScenarioSpec,
    },
    /// The static-resilience sugar form (see [`Query`]).
    Query {
        /// The query to answer.
        query: Query,
    },
    /// Return the canonical content hash of a spec without running it.
    Hash {
        /// The spec to hash.
        spec: ScenarioSpec,
    },
    /// Return the server's work and cache counters.
    Stats,
    /// Acknowledge and stop serving: [`ReportServer::serve`] returns after
    /// answering this request, and [`ReportServer::serve_tcp`] stops
    /// accepting connections — a clean alternative to killing the process.
    Shutdown,
}

/// One request line: an id (echoed in the response) and a body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: u64,
    /// The request body.
    pub request: Request,
}

/// The memoizing report server.
///
/// Three cache layers, coarse to fine:
///
/// 1. **Reports** — finished compact-JSON reports keyed by spec content
///    hash; a hit is answered without touching anything else.
/// 2. **Overlays** — built overlays (kernel pre-compiled) keyed by
///    `(geometry, bits, seed)`, shared across *different* static-resilience
///    queries (same ring, different `q`).
/// 3. **Chain solves** — Markov-chain success probabilities keyed by
///    `(family, hops, q)`, shared across queries and grid points.
pub struct ReportServer {
    reports: HashMap<u64, String>,
    overlays: OverlayCache,
    chains: ChainCache,
    stats: ServerStats,
    threads: usize,
    shutdown: bool,
}

impl ReportServer {
    /// A fresh server running specs with the given thread budget.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ReportServer {
            reports: HashMap::new(),
            overlays: OverlayCache::new(),
            chains: ChainCache::new(),
            stats: ServerStats::default(),
            threads: threads.max(1),
            shutdown: false,
        }
    }

    /// Whether a [`Request::Shutdown`] has been acknowledged. The serve
    /// loops consult this after every response; between loops it stays
    /// set, so a shut-down server does not resume serving.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// A snapshot of the work counters, with the cache-layer counters
    /// folded in.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            overlay_builds: self.overlays.builds(),
            overlay_hits: self.overlays.hits(),
            kernel_compiles: self.overlays.kernel_compiles(),
            chain_solves: self.chains.solves(),
            chain_hits: self.chains.hits(),
            ..self.stats
        }
    }

    /// Answers a spec with its compact report JSON, from cache when the
    /// spec's content hash has been seen before.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the spec is invalid or its run fails;
    /// failures are not cached.
    pub fn report_json(&mut self, spec: &ScenarioSpec) -> Result<String, SpecError> {
        spec.validate()?;
        let hash = spec.content_hash();
        if let Some(cached) = self.reports.get(&hash) {
            self.stats.report_hits += 1;
            return Ok(cached.clone());
        }
        self.stats.report_misses += 1;
        let report = self.execute(spec)?;
        self.stats.trial_runs += 1;
        let json = serde_json::to_string(&report).map_err(|err| SpecError::Io(err.to_string()))?;
        self.reports.insert(hash, json.clone());
        Ok(json)
    }

    /// Runs a spec for real, routing the static-resilience family through
    /// the overlay and chain caches.
    fn execute(&mut self, spec: &ScenarioSpec) -> Result<ScenarioReport, SpecError> {
        if let ExperimentSpec::StaticResilience {
            geometry,
            bits,
            grid,
            pairs,
            trials,
        } = &spec.experiment
        {
            let overlay = self
                .overlays
                .get_or_build(geometry, *bits, spec.seed, spec.backend())?;
            let chains = &mut self.chains;
            let report = static_resilience_report_with(
                geometry,
                *bits,
                grid,
                *pairs,
                *trials,
                spec.seed,
                self.threads,
                overlay.as_ref(),
                |family, h, q| chains.success_probability(family, h, q),
            )?;
            return Ok(ScenarioReport {
                schema: REPORT_SCHEMA.to_owned(),
                name: spec.name.clone(),
                family: spec.family().name().to_owned(),
                spec_hash: spec.content_hash_hex(),
                seed: spec.seed,
                payload: report.to_value(),
            });
        }
        Ok(run_spec(spec, Some(self.threads))?.report)
    }

    /// Handles one request line and returns the response line (no trailing
    /// newline).
    ///
    /// Malformed and unknown requests get a structured error envelope: the
    /// client's `id` is echoed whenever the line is valid JSON carrying a
    /// non-negative integer `id` field — even if the request body itself is
    /// unparsable — so pipelined clients can correlate the failure. Only
    /// lines that are not JSON at all (or carry no usable id) fall back to
    /// `id: 0`.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.stats.requests += 1;
        let envelope: RequestEnvelope = match serde_json::from_str(line) {
            Ok(envelope) => envelope,
            Err(err) => {
                self.stats.errors += 1;
                return error_response(salvage_request_id(line), &format!("bad request: {err}"));
            }
        };
        let id = envelope.id;
        let body = match envelope.request {
            Request::Report { spec } => self.report_json(&spec),
            Request::Query { query } => self.report_json(&query.to_spec()),
            Request::Hash { spec } => spec
                .validate()
                .map(|()| format!("{{\"spec_hash\":\"{}\"}}", spec.content_hash_hex())),
            Request::Stats => {
                serde_json::to_string(&self.stats()).map_err(|err| SpecError::Io(err.to_string()))
            }
            Request::Shutdown => {
                self.shutdown = true;
                Ok("{\"shutdown\":true}".to_owned())
            }
        };
        match body {
            Ok(payload) => format!("{{\"id\":{id},\"ok\":{payload}}}"),
            Err(err) => {
                self.stats.errors += 1;
                error_response(id, &err.to_string())
            }
        }
    }

    /// Serves line-delimited requests from `reader` to `writer` until EOF
    /// or an acknowledged [`Request::Shutdown`]. Empty lines are ignored.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from either side.
    pub fn serve<R: BufRead, W: Write>(&mut self, reader: R, mut writer: W) -> io::Result<()> {
        if self.shutdown {
            return Ok(());
        }
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(writer, "{response}")?;
            writer.flush()?;
            if self.shutdown {
                break;
            }
        }
        Ok(())
    }

    /// Binds `addr` and serves connections sequentially, sharing the caches
    /// across all of them. Accepts until a connection sends
    /// [`Request::Shutdown`] (the acknowledgement is written back first),
    /// then returns cleanly.
    ///
    /// # Errors
    ///
    /// Returns the bind error; per-connection errors are logged to stderr
    /// and the server keeps accepting.
    pub fn serve_tcp(&mut self, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        eprintln!("scenario server listening on {}", listener.local_addr()?);
        self.serve_listener(&listener)
    }

    /// [`ReportServer::serve_tcp`] over an already-bound listener — the
    /// testable seam: callers that bind port 0 themselves know the actual
    /// address, which `serve_tcp` only reports on stderr.
    ///
    /// # Errors
    ///
    /// Returns the first accept error; per-connection errors are logged to
    /// stderr and the server keeps accepting.
    pub fn serve_listener(&mut self, listener: &TcpListener) -> io::Result<()> {
        for stream in listener.incoming() {
            match stream.and_then(|stream| {
                let reader = BufReader::new(stream.try_clone()?);
                self.serve(reader, stream)
            }) {
                Ok(()) => {}
                Err(err) => eprintln!("connection error: {err}"),
            }
            if self.shutdown {
                eprintln!("scenario server shutting down on request");
                break;
            }
        }
        Ok(())
    }
}

/// Pulls a non-negative integer `id` out of an otherwise unparsable request
/// line, so the error envelope still correlates. `0` when the line is not a
/// JSON object or carries no usable id.
fn salvage_request_id(line: &str) -> u64 {
    serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|value| match value.get("id") {
            Some(Value::U64(id)) => Some(*id),
            _ => None,
        })
        .unwrap_or(0)
}

fn error_response(id: u64, message: &str) -> String {
    let escaped =
        serde_json::to_string(&message.to_owned()).unwrap_or_else(|_| "\"error\"".to_owned());
    format!("{{\"id\":{id},\"err\":{escaped}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_line(id: u64, spec: &ScenarioSpec) -> String {
        serde_json::to_string(&RequestEnvelope {
            id,
            request: Request::Report { spec: spec.clone() },
        })
        .unwrap()
    }

    #[test]
    fn malformed_lines_get_an_error_envelope() {
        let mut server = ReportServer::new(1);
        let response = server.handle_line("not json");
        assert!(response.starts_with("{\"id\":0,\"err\":"));
        assert_eq!(server.stats().errors, 1);
    }

    #[test]
    fn malformed_bodies_still_echo_the_request_id() {
        let mut server = ReportServer::new(1);
        let response = server.handle_line("{\"id\":41,\"request\":{\"NoSuchThing\":{}}}");
        assert!(
            response.starts_with("{\"id\":41,\"err\":"),
            "unknown request kinds keep their id: {response}"
        );
        let response = server.handle_line("{\"id\":42}");
        assert!(
            response.starts_with("{\"id\":42,\"err\":"),
            "missing bodies keep their id: {response}"
        );
        let response = server.handle_line("{\"id\":-7,\"request\":\"Stats\"}");
        assert!(
            response.starts_with("{\"id\":0,\"err\":"),
            "unusable ids fall back to 0: {response}"
        );
        assert_eq!(server.stats().errors, 3);
    }

    #[test]
    fn shutdown_is_acknowledged_and_ends_the_serve_loop() {
        let mut server = ReportServer::new(1);
        let shutdown = serde_json::to_string(&RequestEnvelope {
            id: 5,
            request: Request::Shutdown,
        })
        .unwrap();
        let stats = serde_json::to_string(&RequestEnvelope {
            id: 6,
            request: Request::Stats,
        })
        .unwrap();
        // The stats line after the shutdown must never be answered.
        let input = format!("{shutdown}\n{stats}\n");
        let mut output = Vec::new();
        server.serve(input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        assert_eq!(text, "{\"id\":5,\"ok\":{\"shutdown\":true}}\n");
        assert!(server.shutdown_requested());
        // A shut-down server stays shut down.
        let mut output = Vec::new();
        server.serve(stats.as_bytes(), &mut output).unwrap();
        assert!(output.is_empty());
    }

    #[test]
    fn invalid_specs_are_rejected_and_not_cached() {
        let mut server = ReportServer::new(1);
        let mut spec = ScenarioSpec::static_resilience("ring", 6, 0.2, 100, 1, 1);
        spec.schema = "dht-scenario/v9".to_owned();
        let response = server.handle_line(&report_line(1, &spec));
        assert!(response.contains("\"err\""));
        assert_eq!(server.stats().report_misses, 0);
    }

    #[test]
    fn hash_requests_answer_without_running_anything() {
        let mut server = ReportServer::new(1);
        let spec = ScenarioSpec::static_resilience("ring", 12, 0.3, 1_000_000, 64, 1);
        let line = serde_json::to_string(&RequestEnvelope {
            id: 9,
            request: Request::Hash { spec: spec.clone() },
        })
        .unwrap();
        let response = server.handle_line(&line);
        assert_eq!(
            response,
            format!(
                "{{\"id\":9,\"ok\":{{\"spec_hash\":\"{}\"}}}}",
                spec.content_hash_hex()
            )
        );
        assert_eq!(server.stats().trial_runs, 0);
    }

    #[test]
    fn implicit_queries_share_the_materialized_memo() {
        let mut server = ReportServer::new(1);
        let query = Query {
            geometry: "xor".to_owned(),
            bits: 8,
            failure_probability: 0.2,
            pairs: Some(400),
            trials: Some(1),
            seed: Some(7),
            backend: None,
        };
        let materialized = server.report_json(&query.to_spec()).unwrap();
        // The implicit twin desugars to the same content hash, so it is
        // answered verbatim from the memo without running anything.
        let implicit = Query {
            backend: Some(Backend::Implicit),
            ..query
        };
        assert_eq!(implicit.to_spec().backend(), Backend::Implicit);
        let answer = server.report_json(&implicit.to_spec()).unwrap();
        assert_eq!(answer, materialized);
        let stats = server.stats();
        assert_eq!(stats.report_hits, 1);
        assert_eq!(stats.trial_runs, 1);
        assert_eq!(stats.overlay_builds, 1);
    }

    #[test]
    fn implicit_backend_runs_answer_byte_identically() {
        // Force the run (fresh server per backend) rather than the memo:
        // the executed reports themselves must match byte for byte.
        let query = Query {
            geometry: "ring".to_owned(),
            bits: 8,
            failure_probability: 0.25,
            pairs: Some(400),
            trials: Some(1),
            seed: Some(7),
            backend: None,
        };
        let materialized = ReportServer::new(2).report_json(&query.to_spec()).unwrap();
        let implicit_query = Query {
            backend: Some(Backend::Implicit),
            ..query
        };
        let mut implicit_server = ReportServer::new(2);
        let implicit = implicit_server
            .report_json(&implicit_query.to_spec())
            .unwrap();
        assert_eq!(materialized, implicit);
        assert_eq!(implicit_server.stats().kernel_compiles, 0);
    }

    #[test]
    fn serve_answers_over_buffered_io() {
        let mut server = ReportServer::new(1);
        let spec = ScenarioSpec::static_resilience("hypercube", 6, 0.1, 200, 1, 4);
        let input = format!("{}\n\n{}\n", report_line(1, &spec), report_line(2, &spec));
        let mut output = Vec::new();
        server.serve(input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank lines are skipped");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":"));
        assert!(lines[1].starts_with("{\"id\":2,\"ok\":"));
        assert_eq!(lines[0][9..], lines[1][9..], "payloads are identical");
    }
}
