//! Batch runner and memoizing report server over declarative
//! [`ScenarioSpec`]s.
//!
//! The [`dht_experiments::spec`] module defines the spec language and can
//! run one spec at a time; this crate adds the two serving shapes on top:
//!
//! * [`runner`] — execute a directory of spec files reproducibly: sorted
//!   input order, schema-versioned report per spec, manifest of content
//!   hashes. Byte-identical across runs and thread budgets.
//! * [`server`] — a persistent line-delimited-JSON service (stdin or TCP)
//!   answering repeated "N, geometry, q → resilience + scalability report"
//!   queries. Responses are memoized keyed by the spec's canonical content
//!   hash, and the expensive intermediates are cached across *different*
//!   queries too: compiled [`dht_overlay::RoutingKernel`]s are reused
//!   through an [`OverlayCache`] and Markov-chain solves through a
//!   [`dht_markov::ChainCache`]. [`ServerStats`] exposes hit counters so
//!   callers (and the integration tests) can observe that a repeated query
//!   ran zero new trials, kernel compiles or chain solves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod runner;
pub mod server;

pub use cache::{OverlayCache, ServerStats};
pub use dht_experiments::spec::{ScenarioReport, ScenarioSpec};
pub use runner::{run_directory, BatchEntry, BatchOptions};
pub use server::{Query, ReportServer, Request, RequestEnvelope};
