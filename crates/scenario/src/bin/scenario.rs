//! The scenario front door: batch-run a directory of spec files, serve
//! reports over stdin or TCP, or hash specs without running them.
//!
//! ```text
//! scenario run <spec-dir> [--out DIR] [--threads N] [--backend B] [--pretty]
//! scenario serve [--tcp ADDR] [--threads N]
//! scenario hash <spec-file>...
//! scenario init <dir> [--paper]
//! ```
//!
//! `--backend materialized|implicit` overrides every spec's routing-table
//! backend; reports are byte-identical either way.

use dht_experiments::output::ReportMode;
use dht_experiments::spec::{Backend, ScenarioSpec, FAMILIES};
use dht_scenario::{run_directory, BatchOptions, ReportServer};
use std::io::BufReader;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("hash") => hash(&args[1..]),
        Some("init") => init(&args[1..]),
        _ => {
            eprintln!(
                "usage: scenario run <spec-dir> [--out DIR] [--threads N] [--backend B] [--pretty]\n\
                 \u{20}      scenario serve [--tcp ADDR] [--threads N]\n\
                 \u{20}      scenario hash <spec-file>...\n\
                 \u{20}      scenario init <dir> [--paper]"
            );
            Err("missing or unknown subcommand".into())
        }
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut spec_dir: Option<PathBuf> = None;
    let mut options = BatchOptions::new("results/scenarios");
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => {
                options.output_dir = PathBuf::from(iter.next().ok_or("--out needs a directory")?);
            }
            "--threads" => {
                options.threads = Some(iter.next().ok_or("--threads needs a count")?.parse()?);
            }
            "--backend" => {
                options.backend = Some(
                    match iter.next().ok_or("--backend needs a name")?.as_str() {
                        "materialized" => Backend::Materialized,
                        "implicit" => Backend::Implicit,
                        other => {
                            return Err(format!(
                                "unknown backend {other:?} (expected materialized or implicit)"
                            )
                            .into())
                        }
                    },
                );
            }
            "--pretty" => options.mode = ReportMode::Pretty,
            other => spec_dir = Some(PathBuf::from(other)),
        }
    }
    let spec_dir = spec_dir.ok_or("scenario run needs a spec directory")?;
    let manifest = run_directory(&spec_dir, &options)?;
    for entry in &manifest {
        match &entry.error {
            None => println!(
                "{:<28} {:<22} {}  -> {}",
                entry.file, entry.family, entry.spec_hash, entry.report
            ),
            Some(error) => println!("{:<28} FAILED: {error}", entry.file),
        }
    }
    let failed = manifest
        .iter()
        .filter(|entry| entry.error.is_some())
        .count();
    println!(
        "ran {} spec(s) from {} into {}",
        manifest.len() - failed,
        spec_dir.display(),
        options.output_dir.display()
    );
    if failed > 0 {
        return Err(format!("{failed} spec file(s) failed; see the manifest").into());
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut tcp: Option<String> = None;
    let mut threads = 1;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--tcp" => tcp = Some(iter.next().ok_or("--tcp needs an address")?.clone()),
            "--threads" => threads = iter.next().ok_or("--threads needs a count")?.parse()?,
            other => return Err(format!("unknown serve argument {other:?}").into()),
        }
    }
    let mut server = ReportServer::new(threads);
    match tcp {
        Some(addr) => server.serve_tcp(&addr)?,
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.serve(BufReader::new(stdin.lock()), stdout.lock())?;
        }
    }
    Ok(())
}

fn init(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut dir: Option<PathBuf> = None;
    let mut paper = false;
    for arg in args {
        match arg.as_str() {
            "--paper" => paper = true,
            other => dir = Some(PathBuf::from(other)),
        }
    }
    let dir = dir.ok_or("scenario init needs a target directory")?;
    std::fs::create_dir_all(&dir)?;
    for family in FAMILIES {
        let spec = family.default_spec(!paper);
        let path = dir.join(format!("{}.json", spec.name));
        std::fs::write(&path, spec.to_json_pretty())?;
        println!("wrote {}", path.display());
    }
    Ok(())
}

fn hash(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    if args.is_empty() {
        return Err("scenario hash needs at least one spec file".into());
    }
    for path in args {
        let text = std::fs::read_to_string(path)?;
        let spec = ScenarioSpec::from_json(&text)?;
        println!("{}  {path}", spec.content_hash_hex());
    }
    Ok(())
}
