//! The server's cross-query caches: built overlays (with their compiled
//! routing kernels) and observable hit counters.

use dht_experiments::implicit_scale::build_implicit_overlay;
use dht_experiments::spec::{build_full_overlay, Backend, SpecError};
use dht_overlay::Overlay;
use dht_sim::SeedSequence;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Caches built overlays keyed by `(geometry, bits, seed, backend)` so the
/// expensive parts of a static-resilience query — overlay construction and
/// the lazy [`dht_overlay::RoutingKernel`] compile — happen once per
/// distinct key, not once per query.
///
/// For the materialized backend the kernel is forced at insert time (where
/// available), so a cache hit hands back an overlay whose plan is already
/// compiled: routing it never pays the lowering again, which
/// [`ServerStats::kernel_compiles`] makes observable. Implicit overlays
/// ([`Backend::Implicit`]) carry no materialized plan — their cache entry is
/// a few hundred bytes of generator state — but caching them still saves the
/// construction-parameter validation and keeps the two backends symmetric.
#[derive(Default)]
pub struct OverlayCache {
    overlays: HashMap<(String, u32, u64, Backend), Arc<dyn Overlay>>,
    builds: u64,
    hits: u64,
    kernel_compiles: u64,
}

impl OverlayCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        OverlayCache::default()
    }

    /// Returns the cached overlay for `(geometry, bits, seed, backend)`,
    /// building (and compiling the kernel of) a new one on first use. Both
    /// backends consume the same construction stream (`SeedSequence` child 0
    /// of `seed`), so they route bit-identically.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the geometry is unknown or construction
    /// fails; failed builds are not cached.
    pub fn get_or_build(
        &mut self,
        geometry: &str,
        bits: u32,
        seed: u64,
        backend: Backend,
    ) -> Result<Arc<dyn Overlay>, SpecError> {
        let key = (geometry.to_owned(), bits, seed, backend);
        if let Some(overlay) = self.overlays.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(overlay));
        }
        let overlay: Arc<dyn Overlay> = match backend {
            Backend::Materialized => Arc::from(build_full_overlay(geometry, bits, seed)?),
            Backend::Implicit => Arc::from(build_implicit_overlay(
                geometry,
                bits,
                SeedSequence::new(seed).child(0),
            )?),
        };
        if overlay.kernel().is_some() {
            self.kernel_compiles += 1;
        }
        self.builds += 1;
        self.overlays.insert(key, Arc::clone(&overlay));
        Ok(overlay)
    }

    /// Overlays built (cache misses).
    #[must_use]
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Cache hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Routing kernels compiled (at most one per build).
    #[must_use]
    pub fn kernel_compiles(&self) -> u64 {
        self.kernel_compiles
    }

    /// Number of distinct overlays held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.overlays.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overlays.is_empty()
    }
}

/// A snapshot of the server's work and cache counters, serialized verbatim
/// as the `Stats` response. The memoization acceptance test reads these to
/// prove a repeated query did no new work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests handled (including errors).
    pub requests: u64,
    /// Report requests answered verbatim from the memo table.
    pub report_hits: u64,
    /// Report requests that had to execute their spec.
    pub report_misses: u64,
    /// Specs actually executed (equals `report_misses` unless a run failed).
    pub trial_runs: u64,
    /// Overlays built by the overlay cache.
    pub overlay_builds: u64,
    /// Overlay-cache hits.
    pub overlay_hits: u64,
    /// Routing kernels compiled.
    pub kernel_compiles: u64,
    /// Markov chains actually solved by the chain cache.
    pub chain_solves: u64,
    /// Chain-cache hits.
    pub chain_hits: u64,
    /// Requests that produced an error response.
    pub errors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_keys_hit_without_rebuilding() {
        let mut cache = OverlayCache::new();
        let first = cache
            .get_or_build("ring", 6, 1, Backend::Materialized)
            .unwrap();
        let second = cache
            .get_or_build("ring", 6, 1, Backend::Materialized)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.kernel_compiles(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_build_distinct_overlays() {
        let mut cache = OverlayCache::new();
        cache
            .get_or_build("ring", 6, 1, Backend::Materialized)
            .unwrap();
        cache
            .get_or_build("ring", 7, 1, Backend::Materialized)
            .unwrap();
        cache
            .get_or_build("xor", 6, 1, Backend::Materialized)
            .unwrap();
        cache
            .get_or_build("ring", 6, 2, Backend::Materialized)
            .unwrap();
        // The backend is part of the key: the implicit twin is a new build.
        cache.get_or_build("ring", 6, 1, Backend::Implicit).unwrap();
        assert_eq!(cache.builds(), 5);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn unknown_geometries_error_and_are_not_cached() {
        let mut cache = OverlayCache::new();
        for backend in [Backend::Materialized, Backend::Implicit] {
            assert!(cache.get_or_build("moebius", 6, 1, backend).is_err());
        }
        assert!(cache.is_empty());
        assert_eq!(cache.builds(), 0);
    }

    #[test]
    fn cached_overlays_come_back_with_kernels_compiled() {
        let mut cache = OverlayCache::new();
        let overlay = cache
            .get_or_build("hypercube", 6, 1, Backend::Materialized)
            .unwrap();
        assert!(overlay.kernel().is_some());
        assert_eq!(cache.kernel_compiles(), 1);
    }

    #[test]
    fn implicit_builds_carry_the_implicit_kernel_and_stay_tiny() {
        let mut cache = OverlayCache::new();
        let overlay = cache.get_or_build("xor", 10, 1, Backend::Implicit).unwrap();
        assert!(overlay.kernel().is_none());
        assert!(overlay.implicit_kernel().is_some());
        assert!(overlay.resident_bytes() < 1024);
        // No materialized plan means no kernel compile to count.
        assert_eq!(cache.kernel_compiles(), 0);
        assert_eq!(cache.builds(), 1);
    }
}
