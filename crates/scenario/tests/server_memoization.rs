//! Acceptance: the server answers a repeated identical query from cache —
//! the second response is bit-identical and does no new work (no trial run,
//! no kernel compile, no chain solve), observable through [`ServerStats`].

use dht_experiments::spec::{Family, ScenarioSpec};
use dht_scenario::{Query, ReportServer, Request, RequestEnvelope};

fn line(id: u64, request: Request) -> String {
    serde_json::to_string(&RequestEnvelope { id, request }).unwrap()
}

#[test]
fn repeated_identical_query_is_answered_from_cache() {
    let mut server = ReportServer::new(2);
    let query = Query {
        geometry: "ring".to_owned(),
        bits: 8,
        failure_probability: 0.3,
        pairs: Some(600),
        trials: Some(1),
        seed: Some(7),
        backend: None,
    };

    let first = server.handle_line(&line(
        1,
        Request::Query {
            query: query.clone(),
        },
    ));
    assert!(first.starts_with("{\"id\":1,\"ok\":"), "{first}");
    let after_first = server.stats();
    assert_eq!(after_first.report_misses, 1);
    assert_eq!(after_first.trial_runs, 1);
    assert_eq!(after_first.overlay_builds, 1);
    assert_eq!(after_first.kernel_compiles, 1);
    assert!(after_first.chain_solves > 0, "ring chains were solved");

    let second = server.handle_line(&line(1, Request::Query { query }));
    assert_eq!(first, second, "second response is bit-identical");

    let after_second = server.stats();
    assert_eq!(after_second.report_hits, 1);
    assert_eq!(
        after_second.trial_runs, after_first.trial_runs,
        "no new trial run"
    );
    assert_eq!(
        after_second.kernel_compiles, after_first.kernel_compiles,
        "no new kernel compile"
    );
    assert_eq!(
        after_second.chain_solves, after_first.chain_solves,
        "no new chain solve"
    );
    assert_eq!(
        after_second.overlay_builds, after_first.overlay_builds,
        "no new overlay build"
    );
}

#[test]
fn cache_key_ignores_name_and_threads_but_not_parameters() {
    let mut server = ReportServer::new(1);
    let spec = ScenarioSpec::static_resilience("hypercube", 7, 0.2, 400, 1, 3);

    let first = server.handle_line(&line(1, Request::Report { spec: spec.clone() }));

    // Same content, different label: still a cache hit.
    let mut renamed = spec.clone();
    renamed.name = "a-different-label".to_owned();
    let renamed_response = server.handle_line(&line(2, Request::Report { spec: renamed }));
    assert_eq!(server.stats().report_hits, 1);
    assert_eq!(first[9..], renamed_response[9..], "same payload, new id");

    // Different failure probability: a miss.
    let changed = ScenarioSpec::static_resilience("hypercube", 7, 0.4, 400, 1, 3);
    server.handle_line(&line(3, Request::Report { spec: changed }));
    let stats = server.stats();
    assert_eq!(stats.report_misses, 2);
    assert_eq!(stats.overlay_builds, 1, "the overlay itself was reused");
    assert_eq!(stats.overlay_hits, 1);
    assert_eq!(
        stats.kernel_compiles, 1,
        "compiled plan reused across queries"
    );
}

#[test]
fn chain_cache_is_shared_across_different_queries() {
    let mut server = ReportServer::new(1);
    let at = |q: f64| ScenarioSpec::static_resilience("xor", 7, q, 300, 1, 5);
    server.handle_line(&line(1, Request::Report { spec: at(0.2) }));
    let solves_one_q = server.stats().chain_solves;
    // Same q, different pairs budget: every chain solve is already cached.
    let mut same_q = at(0.2);
    if let dht_experiments::spec::ExperimentSpec::StaticResilience { pairs, .. } =
        &mut same_q.experiment
    {
        *pairs = 500;
    }
    server.handle_line(&line(2, Request::Report { spec: same_q }));
    let stats = server.stats();
    assert_eq!(stats.report_misses, 2, "different budget, different report");
    assert_eq!(stats.chain_solves, solves_one_q, "chain solves all hit");
    assert!(stats.chain_hits > 0);
}

#[test]
fn non_query_families_are_memoized_too() {
    let mut server = ReportServer::new(1);
    let spec = Family::ScalabilityTable.default_spec(true);
    let first = server.handle_line(&line(4, Request::Report { spec: spec.clone() }));
    let second = server.handle_line(&line(4, Request::Report { spec }));
    assert_eq!(first, second);
    let stats = server.stats();
    assert_eq!(stats.report_misses, 1);
    assert_eq!(stats.report_hits, 1);
}

#[test]
fn tcp_server_shuts_down_cleanly_on_request() {
    use std::io::{BufRead, BufReader, Write};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let mut server = ReportServer::new(1);
        server.serve_listener(&listener).unwrap();
        server.shutdown_requested()
    });

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    writeln!(stream, "{}", line(1, Request::Stats)).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.starts_with("{\"id\":1,\"ok\":"), "{response}");

    writeln!(stream, "{}", line(2, Request::Shutdown)).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert_eq!(response.trim_end(), "{\"id\":2,\"ok\":{\"shutdown\":true}}");

    // No kill required: the accept loop ends on its own.
    assert!(
        handle.join().unwrap(),
        "server exited with shutdown flagged"
    );
}

#[test]
fn stats_round_trip_over_the_wire() {
    let mut server = ReportServer::new(1);
    let response = server.handle_line(&line(5, Request::Stats));
    assert!(response.starts_with("{\"id\":5,\"ok\":{"));
    assert!(response.contains("\"requests\":1"));
}
