//! Acceptance: the batch runner's output over a spec directory is
//! byte-identical across two runs and across thread counts.

use dht_experiments::spec::{ExperimentSpec, Family, ScenarioSpec};
use dht_scenario::{run_directory, BatchOptions};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

fn write_specs(dir: &Path) {
    fs::create_dir_all(dir).unwrap();
    let fig3 = ScenarioSpec::new(
        "fig3_smoke",
        2006,
        ExperimentSpec::Fig3 {
            failure_probability: 0.3,
            trials: 2_000,
        },
    );
    let table = Family::ScalabilityTable.default_spec(true);
    let resilience = ScenarioSpec::static_resilience("ring", 8, 0.3, 500, 1, 7);
    for spec in [&fig3, &table, &resilience] {
        fs::write(
            dir.join(format!("{}.json", spec.name)),
            spec.to_json_pretty(),
        )
        .unwrap();
    }
}

/// Every output file's bytes, keyed by file name.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    fs::read_dir(dir)
        .unwrap()
        .map(|entry| {
            let path = entry.unwrap().path();
            (
                path.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&path).unwrap(),
            )
        })
        .collect()
}

#[test]
fn batch_output_is_byte_identical_across_runs_and_thread_counts() {
    let base = std::env::temp_dir().join(format!("dht-scenario-batch-{}", std::process::id()));
    let spec_dir = base.join("specs");
    write_specs(&spec_dir);

    let mut snapshots = Vec::new();
    let mut manifests = Vec::new();
    for (label, threads) in [("a", Some(1)), ("b", Some(1)), ("c", Some(4))] {
        let out = base.join(label);
        let options = BatchOptions {
            output_dir: out.clone(),
            threads,
            ..BatchOptions::new(&out)
        };
        manifests.push(run_directory(&spec_dir, &options).unwrap());
        snapshots.push(snapshot(&out));
    }

    assert_eq!(manifests[0], manifests[1], "manifest stable across runs");
    assert_eq!(manifests[0], manifests[2], "manifest stable across threads");
    assert_eq!(snapshots[0], snapshots[1], "bytes stable across runs");
    assert_eq!(snapshots[0], snapshots[2], "bytes stable across threads");

    // One report per spec plus the manifest itself.
    assert_eq!(snapshots[0].len(), 4);
    assert!(snapshots[0].contains_key("manifest.json"));
    assert!(snapshots[0].contains_key("fig3_smoke.json"));

    fs::remove_dir_all(&base).ok();
}

#[test]
fn failing_spec_files_are_collected_without_aborting_the_batch() {
    let base = std::env::temp_dir().join(format!("dht-scenario-bad-{}", std::process::id()));
    fs::create_dir_all(&base).unwrap();
    // Sorted batch order: the broken file comes first, a spec that parses
    // but cannot run comes second, and a good spec comes last.
    fs::write(base.join("a_broken.json"), "{not json").unwrap();
    let unrunnable = ScenarioSpec::new(
        "bad_geometry",
        7,
        ExperimentSpec::StaticResilience {
            geometry: "torus".to_owned(),
            bits: 6,
            grid: vec![0.1],
            pairs: 50,
            trials: 1,
        },
    );
    fs::write(base.join("b_unrunnable.json"), unrunnable.to_json_pretty()).unwrap();
    let good = ScenarioSpec::static_resilience("ring", 6, 0.2, 100, 1, 3);
    fs::write(base.join("c_good.json"), good.to_json_pretty()).unwrap();

    let out = base.join("out");
    let manifest = run_directory(&base, &BatchOptions::new(&out)).unwrap();
    assert_eq!(manifest.len(), 3, "every file gets a manifest row");

    let broken = &manifest[0];
    assert_eq!(broken.file, "a_broken.json");
    let error = broken.error.as_deref().unwrap();
    assert!(error.contains("a_broken.json"), "{error}");
    assert!(broken.report.is_empty() && broken.spec_hash.is_empty());

    let bad_run = &manifest[1];
    assert_eq!(bad_run.file, "b_unrunnable.json");
    assert!(bad_run.error.is_some());
    assert_eq!(bad_run.name, "bad_geometry", "parsed identity is kept");
    assert_eq!(bad_run.spec_hash, unrunnable.content_hash_hex());
    assert!(bad_run.report.is_empty());

    let ok = &manifest[2];
    assert_eq!(ok.file, "c_good.json");
    assert_eq!(ok.error, None);
    assert!(out.join(&ok.report).is_file(), "good report was written");

    // The manifest on disk records the failures too.
    let written = fs::read_to_string(out.join("manifest.json")).unwrap();
    let rows: Vec<dht_scenario::BatchEntry> = serde_json::from_str(&written).unwrap();
    assert_eq!(rows, manifest);

    fs::remove_dir_all(&base).ok();
}
