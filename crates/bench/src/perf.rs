//! The machine-readable perf trajectory: `BENCH_routing.json`.
//!
//! Two bench targets feed this file — `overlay_routing` (single-message
//! greedy routing per geometry at `2^16` and `2^20`) and
//! `fig6_static_resilience` (trial-engine measurement throughput). Each run
//! loads the report, replaces its own entries (matched by bench name, mode,
//! geometry, bits and failure probability) and writes it back, so the file
//! accumulates the full trajectory regardless of which bench ran last.
//!
//! Environment contract (all optional):
//!
//! * `BENCH_SMOKE=1` — fewer samples and routes per sample; the schema and
//!   entry set stay identical, so smoke runs remain comparable.
//! * `BENCH_OUTPUT=<path>` — write the report there instead of the committed
//!   `BENCH_routing.json` at the workspace root.
//! * `BENCH_BASELINE=<path>` — after measuring, compare against the report
//!   at `<path>` and **exit non-zero** when any matching entry's median
//!   ns/route regressed more than the tolerance.
//! * `BENCH_TOLERANCE=<fraction>` — regression tolerance, default `0.25`.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Schema tag written into every report.
///
/// `v2` added [`RoutingBenchEntry::median_ns_per_hop`] (the compiled-kernel
/// per-hop trajectory); v1 reports are regenerated rather than migrated.
pub const SCHEMA: &str = "dht-bench/routing-v2";

/// Default regression tolerance: fail when the median is >25% slower.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// One measured configuration of a routing bench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingBenchEntry {
    /// Bench target that produced the entry (`overlay_routing`,
    /// `fig6_static_resilience`).
    pub bench: String,
    /// Measurement budget the entry was taken under (`full` or `smoke`).
    /// Medians are only comparable within a mode — smoke samples run
    /// shorter and colder — so the baseline gate never compares across
    /// modes.
    pub mode: String,
    /// Geometry name (`ring`, `xor`, `hypercube`, `tree`, `symphony`).
    pub geometry: String,
    /// Identifier length of the overlay (`2^bits` nodes).
    pub bits: u32,
    /// Node failure probability of the frozen mask routed under.
    pub failure_probability: f64,
    /// Median wall-clock nanoseconds per routed message.
    pub median_ns_per_route: f64,
    /// Median wall-clock nanoseconds per executed hop (`median_ns_per_route`
    /// over the mean hops per route of the measured pair set), or `None`
    /// when the bench does not measure hops. Kernel entries report this — it
    /// is the number the per-hop optimisation work moves. `Option` keeps
    /// schema-v1 reports (which predate the field) loadable: a missing field
    /// reads as "not measured" instead of poisoning the whole report.
    pub median_ns_per_hop: Option<f64>,
    /// Routes per second implied by the median.
    pub routes_per_sec: f64,
    /// Routes timed per sample.
    pub routes_per_sample: u64,
    /// Samples the median was taken over.
    pub samples: u64,
}

impl RoutingBenchEntry {
    fn matches(&self, other: &RoutingBenchEntry) -> bool {
        self.bench == other.bench
            && self.mode == other.mode
            && self.geometry == other.geometry
            && self.bits == other.bits
            && self.failure_probability == other.failure_probability
    }

    /// Human-readable key, e.g. `overlay_routing/ring/2^16/q=0.30/full`.
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}/{}/2^{}/q={:.2}/{}",
            self.bench, self.geometry, self.bits, self.failure_probability, self.mode
        )
    }
}

/// The whole `BENCH_routing.json` document.
///
/// The report accumulates entries of both measurement modes; each entry
/// carries its own `mode`, so there is deliberately no report-level mode
/// field to go stale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingBenchReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// All measured entries, stable-ordered by key.
    pub entries: Vec<RoutingBenchEntry>,
}

impl Default for RoutingBenchReport {
    fn default() -> Self {
        RoutingBenchReport::new()
    }
}

impl RoutingBenchReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        RoutingBenchReport {
            schema: SCHEMA.to_owned(),
            entries: Vec::new(),
        }
    }

    /// Replaces every entry matching one of `fresh` (same bench, mode,
    /// geometry, bits and failure probability) and appends the rest, keeping
    /// the report sorted by key.
    pub fn upsert(&mut self, fresh: Vec<RoutingBenchEntry>) {
        self.entries
            .retain(|existing| !fresh.iter().any(|entry| entry.matches(existing)));
        self.entries.extend(fresh);
        self.entries.sort_by_key(RoutingBenchEntry::key);
    }
}

/// `true` when `BENCH_SMOKE` requests the reduced measurement budget.
#[must_use]
pub fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// The workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Resolves a path from the environment against the workspace root, so
/// `BENCH_BASELINE=BENCH_routing.json` works no matter which directory cargo
/// runs the bench binary from.
fn resolve(path: PathBuf) -> PathBuf {
    if path.is_absolute() {
        path
    } else {
        workspace_root().join(path)
    }
}

/// Where to write the report: `BENCH_OUTPUT`, or the committed
/// `BENCH_routing.json` at the workspace root. Relative paths resolve
/// against the workspace root.
#[must_use]
pub fn output_path() -> PathBuf {
    std::env::var_os("BENCH_OUTPUT").map_or_else(
        || workspace_root().join("BENCH_routing.json"),
        |path| resolve(PathBuf::from(path)),
    )
}

/// The committed baseline to enforce, when `BENCH_BASELINE` is set.
/// Relative paths resolve against the workspace root.
#[must_use]
pub fn baseline_path() -> Option<PathBuf> {
    std::env::var_os("BENCH_BASELINE").map(|path| resolve(PathBuf::from(path)))
}

/// The regression tolerance (`BENCH_TOLERANCE`, default
/// [`DEFAULT_TOLERANCE`]).
#[must_use]
pub fn tolerance() -> f64 {
    std::env::var("BENCH_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t: &f64| t.is_finite() && *t >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Loads a report, or `None` when the file is absent or unparseable.
#[must_use]
pub fn load_report(path: &Path) -> Option<RoutingBenchReport> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Merges `fresh` entries into the report at [`output_path`] and writes it
/// back (pretty-printed, trailing newline).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn merge_into_output(fresh: Vec<RoutingBenchEntry>) -> std::io::Result<RoutingBenchReport> {
    let path = output_path();
    let mut report = load_report(&path).unwrap_or_default();
    report.schema = SCHEMA.to_owned();
    report.upsert(fresh);
    let mut text = serde_json::to_string_pretty(&report).expect("report serialises");
    text.push('\n');
    std::fs::write(&path, text)?;
    println!(
        "wrote {} entries to {}",
        report.entries.len(),
        path.display()
    );
    Ok(report)
}

/// Compares `current` entries against the baseline report (if
/// `BENCH_BASELINE` is set and readable) and returns every regression
/// message; an empty vector means the trajectory held.
#[must_use]
pub fn baseline_regressions(current: &[RoutingBenchEntry]) -> Vec<String> {
    let Some(path) = baseline_path() else {
        return Vec::new();
    };
    let Some(baseline) = load_report(&path) else {
        println!(
            "no readable baseline at {}; skipping regression check",
            path.display()
        );
        return Vec::new();
    };
    let allowed = tolerance();
    let mut regressions = Vec::new();
    for entry in current {
        let Some(base) = baseline.entries.iter().find(|b| b.matches(entry)) else {
            continue;
        };
        let limit = base.median_ns_per_route * (1.0 + allowed);
        if entry.median_ns_per_route > limit {
            regressions.push(format!(
                "{}: {:.1} ns/route vs baseline {:.1} ns/route (+{:.0}% > +{:.0}% allowed)",
                entry.key(),
                entry.median_ns_per_route,
                base.median_ns_per_route,
                100.0 * (entry.median_ns_per_route / base.median_ns_per_route - 1.0),
                100.0 * allowed,
            ));
        }
        // The per-hop trajectory is gated too, where both sides measured it.
        if let (Some(current_hop), Some(base_hop)) =
            (entry.median_ns_per_hop, base.median_ns_per_hop)
        {
            if base_hop > 0.0 && current_hop > base_hop * (1.0 + allowed) {
                regressions.push(format!(
                    "{}: {:.1} ns/hop vs baseline {:.1} ns/hop (+{:.0}% > +{:.0}% allowed)",
                    entry.key(),
                    current_hop,
                    base_hop,
                    100.0 * (current_hop / base_hop - 1.0),
                    100.0 * allowed,
                ));
            }
        }
    }
    regressions
}

/// Prints regressions and exits non-zero if there are any; call at the end
/// of a bench `main`.
pub fn enforce_baseline(current: &[RoutingBenchEntry]) {
    let regressions = baseline_regressions(current);
    if regressions.is_empty() {
        if baseline_path().is_some() {
            println!(
                "perf trajectory held (tolerance +{:.0}%)",
                100.0 * tolerance()
            );
        }
        return;
    }
    eprintln!("perf trajectory regressed:");
    for regression in &regressions {
        eprintln!("  {regression}");
    }
    std::process::exit(1);
}

/// Times `routes_per_sample` invocations of `route_one` per sample and
/// returns the median nanoseconds per invocation over `samples` samples.
/// One untimed warm-up sample runs first so cold caches do not land in the
/// median.
pub fn measure_median_ns<F: FnMut()>(
    routes_per_sample: u64,
    samples: u64,
    mut route_one: F,
) -> f64 {
    let samples = samples.max(1);
    let routes_per_sample = routes_per_sample.max(1);
    for _ in 0..routes_per_sample {
        route_one();
    }
    let mut timings: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..routes_per_sample {
            route_one();
        }
        timings.push(start.elapsed().as_nanos() as f64 / routes_per_sample as f64);
    }
    timings.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    timings[timings.len() / 2]
}

/// Builds an entry from a measured median.
#[must_use]
pub fn entry(
    bench: &str,
    geometry: &str,
    bits: u32,
    failure_probability: f64,
    median_ns_per_route: f64,
    routes_per_sample: u64,
    samples: u64,
) -> RoutingBenchEntry {
    RoutingBenchEntry {
        bench: bench.to_owned(),
        mode: if smoke_mode() { "smoke" } else { "full" }.to_owned(),
        geometry: geometry.to_owned(),
        bits,
        failure_probability,
        median_ns_per_route,
        median_ns_per_hop: None,
        routes_per_sec: if median_ns_per_route > 0.0 {
            1e9 / median_ns_per_route
        } else {
            0.0
        },
        routes_per_sample,
        samples,
    }
}

impl RoutingBenchEntry {
    /// Attaches a measured per-hop median (`median_ns_per_route` divided by
    /// the mean hops per route of the measured pair set).
    #[must_use]
    pub fn with_ns_per_hop(mut self, median_ns_per_hop: f64) -> Self {
        self.median_ns_per_hop = Some(median_ns_per_hop);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(geometry: &str, bits: u32, ns: f64) -> RoutingBenchEntry {
        entry("overlay_routing", geometry, bits, 0.3, ns, 1000, 5)
    }

    #[test]
    fn upsert_replaces_matching_entries_and_sorts() {
        let mut report = RoutingBenchReport::new();
        report.upsert(vec![sample_entry("ring", 16, 100.0)]);
        report.upsert(vec![
            sample_entry("ring", 16, 90.0),
            sample_entry("xor", 16, 80.0),
        ]);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.entries[0].geometry, "ring");
        assert_eq!(report.entries[0].median_ns_per_route, 90.0);
        // Different bits are a different configuration, not a replacement.
        report.upsert(vec![sample_entry("ring", 20, 500.0)]);
        assert_eq!(report.entries.len(), 3);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mut report = RoutingBenchReport::new();
        report.upsert(vec![sample_entry("tree", 16, 42.5)]);
        let json = serde_json::to_string(&report).unwrap();
        let back: RoutingBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn entry_derives_routes_per_sec() {
        let e = sample_entry("ring", 16, 200.0);
        assert!((e.routes_per_sec - 5_000_000.0).abs() < 1e-6);
        assert_eq!(e.key(), "overlay_routing/ring/2^16/q=0.30/full");
        assert_eq!(e.median_ns_per_hop, None, "per-hop is opt-in");
        let hopped = e.with_ns_per_hop(25.0);
        assert_eq!(hopped.median_ns_per_hop, Some(25.0));
    }

    #[test]
    fn per_hop_medians_survive_serde() {
        let mut report = RoutingBenchReport::new();
        report.upsert(vec![sample_entry("ring", 20, 80.0).with_ns_per_hop(11.5)]);
        let json = serde_json::to_string(&report).unwrap();
        let back: RoutingBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries[0].median_ns_per_hop, Some(11.5));
        assert_eq!(back.schema, SCHEMA);
    }

    #[test]
    fn v1_reports_without_the_per_hop_field_still_load() {
        // The committed baseline predating schema v2 must not be wiped by a
        // bench that fails to parse it: a missing median_ns_per_hop reads as
        // "not measured".
        let v1 = r#"{
            "schema": "dht-bench/routing-v1",
            "entries": [{
                "bench": "overlay_routing", "mode": "full", "geometry": "ring",
                "bits": 16, "failure_probability": 0.3,
                "median_ns_per_route": 100.0, "routes_per_sec": 1e7,
                "routes_per_sample": 1000, "samples": 5
            }]
        }"#;
        let report: RoutingBenchReport = serde_json::from_str(v1).unwrap();
        assert_eq!(report.entries.len(), 1);
        assert_eq!(report.entries[0].median_ns_per_hop, None);
    }

    #[test]
    fn measure_median_ns_is_positive_and_finite() {
        let mut counter = 0u64;
        let ns = measure_median_ns(100, 3, || counter = counter.wrapping_add(1));
        assert!(ns.is_finite() && ns >= 0.0);
        // 3 timed samples plus 1 warm-up sample.
        assert_eq!(counter, 400);
    }
}
