//! Criterion benchmarks plus the machine-readable perf trajectory.
//!
//! The `benches/` targets print criterion-style medians for humans; the
//! [`perf`] module is the machine-readable side: routing benches write their
//! medians into `BENCH_routing.json` at the workspace root and can enforce a
//! committed baseline, which is what the CI `bench-perf` job runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod perf;
