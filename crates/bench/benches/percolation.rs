//! Benchmarks of the connectivity substrate (experiment E9): connected
//! components, reachable components and percolation-threshold estimation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_overlay::{CanOverlay, FailureMask, KademliaOverlay, Overlay, PlaxtonOverlay};
use dht_percolation::{connected_components, percolation_threshold, reachable_component};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 12;

fn bench_connected_components(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let overlays: Vec<(&str, Box<dyn Overlay>)> = vec![
        ("hypercube", Box::new(CanOverlay::build(BITS).unwrap())),
        (
            "xor",
            Box::new(KademliaOverlay::build(BITS, &mut rng).unwrap()),
        ),
        (
            "tree",
            Box::new(PlaxtonOverlay::build(BITS, &mut rng).unwrap()),
        ),
    ];
    let mut group = c.benchmark_group("connected_components_q30_2_12");
    for (name, overlay) in &overlays {
        let mut mask_rng = ChaCha8Rng::seed_from_u64(5);
        let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut mask_rng);
        group.bench_with_input(BenchmarkId::from_parameter(name), overlay, |b, overlay| {
            b.iter(|| connected_components(black_box(overlay.as_ref()), black_box(&mask)))
        });
    }
    group.finish();
}

fn bench_reachable_component(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let overlay = KademliaOverlay::build(10, &mut rng).unwrap();
    let mask = FailureMask::sample(overlay.key_space(), 0.3, &mut rng);
    let root = mask.alive_nodes().next().expect("someone survives");
    let mut group = c.benchmark_group("reachable_component_2_10");
    group.sample_size(20);
    group.bench_function("xor_q30", |b| {
        b.iter(|| reachable_component(black_box(&overlay), black_box(root), black_box(&mask)))
    });
    group.finish();
}

fn bench_threshold_estimation(c: &mut Criterion) {
    let overlay = CanOverlay::build(10).unwrap();
    let mut group = c.benchmark_group("percolation_threshold_2_10");
    group.sample_size(10);
    group.bench_function("hypercube_8_iterations", |b| {
        b.iter(|| percolation_threshold(black_box(&overlay), 0.5, 8, 1, 7))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_connected_components,
    bench_reachable_component,
    bench_threshold_estimation
);
criterion_main!(benches);
