//! Benchmarks of the asymptotic evaluations behind Fig. 7 (experiments
//! E5/E6): log-domain routability at `N = 2^100` and the size sweep at
//! `q = 0.1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_experiments::fig7::{fig7a, fig7b, Fig7Config};
use dht_rcm_core::{routability, Geometry, RoutingGeometry, SystemSize};
use std::hint::black_box;

fn bench_single_point_at_2_100(c: &mut Criterion) {
    let size = SystemSize::power_of_two(100).expect("valid size");
    let mut group = c.benchmark_group("routability_n_2_100_q_30");
    for geometry in Geometry::all_with_default_parameters() {
        group.bench_with_input(
            BenchmarkId::from_parameter(geometry.name()),
            &geometry,
            |b, geometry| {
                b.iter(|| {
                    routability(black_box(geometry), black_box(size), black_box(0.3))
                        .expect("valid operating point")
                })
            },
        );
    }
    group.finish();
}

fn bench_fig7a_full_panel(c: &mut Criterion) {
    let config = Fig7Config::smoke();
    let mut group = c.benchmark_group("fig7_panels");
    group.sample_size(10);
    group.bench_function("fig7a_panel_smoke_grid", |b| {
        b.iter(|| fig7a(black_box(&config)).expect("panel evaluates"))
    });
    group.bench_function("fig7b_panel_smoke_grid", |b| {
        b.iter(|| fig7b(black_box(&config)).expect("panel evaluates"))
    });
    group.finish();
}

criterion_group!(benches, bench_single_point_at_2_100, bench_fig7a_full_panel);
criterion_main!(benches);
