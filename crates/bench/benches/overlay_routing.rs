//! Micro-benchmarks of single-message greedy routing on each overlay, with
//! and without failures — the inner loop of every simulated figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_overlay::{
    route, CanOverlay, ChordOverlay, ChordVariant, FailureMask, KademliaOverlay, Overlay,
    PlaxtonOverlay, SymphonyOverlay,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 14;

fn overlays() -> Vec<(&'static str, Box<dyn Overlay>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    vec![
        (
            "tree",
            Box::new(PlaxtonOverlay::build(BITS, &mut rng).unwrap()) as Box<dyn Overlay>,
        ),
        ("hypercube", Box::new(CanOverlay::build(BITS).unwrap())),
        (
            "xor",
            Box::new(KademliaOverlay::build(BITS, &mut rng).unwrap()),
        ),
        (
            "ring",
            Box::new(ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap()),
        ),
        (
            "symphony",
            Box::new(SymphonyOverlay::build(BITS, 1, 1, &mut rng).unwrap()),
        ),
    ]
}

fn bench_routing(c: &mut Criterion, group_name: &str, q: f64) {
    let overlays = overlays();
    let mut group = c.benchmark_group(group_name);
    for (name, overlay) in &overlays {
        let space = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mask = FailureMask::sample(space, q, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(name), overlay, |b, overlay| {
            let mut pair_rng = ChaCha8Rng::seed_from_u64(13);
            b.iter(|| {
                let source = space.wrap(pair_rng.gen::<u64>());
                let target = space.wrap(pair_rng.gen::<u64>());
                black_box(route(overlay.as_ref(), source, target, &mask))
            })
        });
    }
    group.finish();
}

fn bench_routing_intact(c: &mut Criterion) {
    bench_routing(c, "route_one_message_intact_2_14", 0.0);
}

fn bench_routing_under_failure(c: &mut Criterion) {
    bench_routing(c, "route_one_message_q30_2_14", 0.3);
}

criterion_group!(benches, bench_routing_intact, bench_routing_under_failure);
criterion_main!(benches);
