//! Micro-benchmarks of single-message greedy routing on each overlay, with
//! and without failures — the inner loop of every simulated figure — plus
//! the machine-readable perf trajectory: per-geometry median ns/route and
//! routes/sec at `2^16` and `2^20` for the scalar path (`overlay_routing`
//! entries), the compiled rank-space kernel routed one message at a time
//! (`kernel_routing` entries, which also record median ns/hop), and the
//! lockstep batched router driving the whole pair workload per invocation
//! (`batch_routing` entries), written to `BENCH_routing.json` and (when
//! `BENCH_BASELINE` is set) enforced against a committed baseline.
//!
//! Environment: `BENCH_SMOKE=1` shrinks the measurement budget,
//! `BENCH_OUTPUT`/`BENCH_BASELINE`/`BENCH_TOLERANCE` control the report —
//! see [`dht_bench::perf`].

use criterion::{criterion_group, BenchmarkId, Criterion};
use dht_bench::perf;
use dht_overlay::{
    default_route_hop_limit, route, CanOverlay, ChordOverlay, ChordVariant, FailureMask,
    KademliaOverlay, Overlay, PlaxtonOverlay, RouteBatch, RouteOutcome, SymphonyOverlay,
};
use dht_sim::PairSampler;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 14;

/// Geometry names in trajectory order.
const GEOMETRIES: [&str; 5] = ["tree", "hypercube", "xor", "ring", "symphony"];

/// Builds one overlay; geometries are built one at a time so the `2^20`
/// measurements never hold two ~300 MB arenas at once.
fn build_overlay(name: &str, bits: u32) -> Box<dyn Overlay> {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    match name {
        "tree" => Box::new(PlaxtonOverlay::build(bits, &mut rng).unwrap()),
        "hypercube" => Box::new(CanOverlay::build(bits).unwrap()),
        "xor" => Box::new(KademliaOverlay::build(bits, &mut rng).unwrap()),
        "ring" => Box::new(ChordOverlay::build(bits, ChordVariant::Deterministic).unwrap()),
        "symphony" => Box::new(SymphonyOverlay::build(bits, 1, 1, &mut rng).unwrap()),
        other => panic!("unknown geometry {other}"),
    }
}

fn overlays() -> Vec<(&'static str, Box<dyn Overlay>)> {
    GEOMETRIES
        .iter()
        .map(|&name| (name, build_overlay(name, BITS)))
        .collect()
}

fn bench_routing(c: &mut Criterion, group_name: &str, q: f64) {
    let overlays = overlays();
    let mut group = c.benchmark_group(group_name);
    for (name, overlay) in &overlays {
        let space = overlay.key_space();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mask = FailureMask::sample(space, q, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(name), overlay, |b, overlay| {
            let mut pair_rng = ChaCha8Rng::seed_from_u64(13);
            b.iter(|| {
                let source = space.wrap(pair_rng.gen::<u64>());
                let target = space.wrap(pair_rng.gen::<u64>());
                black_box(route(overlay.as_ref(), source, target, &mask))
            })
        });
    }
    group.finish();
}

fn bench_routing_intact(c: &mut Criterion) {
    bench_routing(c, "route_one_message_intact_2_14", 0.0);
}

fn bench_routing_under_failure(c: &mut Criterion) {
    bench_routing(c, "route_one_message_q30_2_14", 0.3);
}

criterion_group!(benches, bench_routing_intact, bench_routing_under_failure);

/// The frozen mask and alive pair set one `(overlay, q)` trajectory point
/// is measured over. Both trajectories (scalar and kernel) are built from
/// the *same* seeds, so their entries are directly comparable — the seeds
/// live here, in one place, to keep that invariant structural.
fn trajectory_workload(overlay: &dyn Overlay, q: f64) -> (FailureMask, Vec<(u64, u64)>) {
    let bits = overlay.key_space().bits();
    let mask = FailureMask::sample(
        overlay.key_space(),
        q,
        &mut ChaCha8Rng::seed_from_u64(0x6D61_736B ^ u64::from(bits)),
    );
    let sampler = PairSampler::new(&mask).expect("enough survivors at these sizes");
    let mut pair_rng = ChaCha8Rng::seed_from_u64(0x7061_6972 ^ u64::from(bits));
    let pairs: Vec<(u64, u64)> = (0..4096)
        .map(|_| sampler.sample_values(&mut pair_rng))
        .collect();
    (mask, pairs)
}

/// Calibrates routes-per-sample to the mode's wall-clock target and returns
/// `(median_ns_per_route, routes_per_sample, samples)`.
fn calibrated_median<F: FnMut()>(smoke: bool, mut route_one: F) -> (f64, u64, u64) {
    let calibration_ns = perf::measure_median_ns(64, 1, &mut route_one).max(1.0);
    // Smoke needs five samples of ~25 ms each: the kernel entries sit at
    // tens of nanoseconds per route, where a median of three 10 ms samples
    // jitters past the regression gate's tolerance on a noisy host.
    let (target_sample_ns, samples) = if smoke { (25e6, 5) } else { (100e6, 7) };
    let routes_per_sample = ((target_sample_ns / calibration_ns) as u64).clamp(64, 500_000);
    let median = perf::measure_median_ns(routes_per_sample, samples, &mut route_one);
    (median, routes_per_sample, samples)
}

/// Measures one `(geometry, bits, q)` trajectory point of the scalar path:
/// routes alive pairs (pre-drawn by rank from the bitset, so the timed loop
/// is route-only) and records the median ns/route.
fn measure_point(
    name: &str,
    overlay: &dyn Overlay,
    q: f64,
    smoke: bool,
) -> perf::RoutingBenchEntry {
    let space = overlay.key_space();
    let (mask, pairs) = trajectory_workload(overlay, q);
    let mut cursor = 0usize;
    let route_one = || {
        let (source, target) = pairs[cursor];
        cursor = (cursor + 1) % pairs.len();
        black_box(route(
            overlay,
            space.wrap(source),
            space.wrap(target),
            &mask,
        ));
    };
    let (median, routes_per_sample, samples) = calibrated_median(smoke, route_one);
    let entry = perf::entry(
        "overlay_routing",
        name,
        space.bits(),
        q,
        median,
        routes_per_sample,
        samples,
    );
    println!(
        "{:<40} {:>12.1} ns/route {:>14.0} routes/sec",
        entry.key(),
        entry.median_ns_per_route,
        entry.routes_per_sec
    );
    entry
}

/// Measures one `(geometry, bits, q)` point of the compiled-kernel
/// trajectory: the same mask and pair workload as [`measure_point`], routed
/// through the rank-space kernel, with the mean executed hops of the pair
/// set turning the route median into a ns/hop median.
fn measure_kernel_point(
    name: &str,
    overlay: &dyn Overlay,
    q: f64,
    smoke: bool,
) -> perf::RoutingBenchEntry {
    let (mask, pairs) = trajectory_workload(overlay, q);
    let kernel = overlay.kernel().expect("all five geometries compile");
    let lowered = kernel.compile_mask(&mask);
    // Resolve the alive words once — the timed loop is pure routing, with no
    // per-route mask-representation match, exactly how the trial engine
    // drives the kernel per shard.
    let words = lowered.words();
    let hop_limit = default_route_hop_limit(overlay);
    let mean_hops = mean_executed_hops(kernel, words, &pairs, hop_limit);

    let mut cursor = 0usize;
    let route_one = || {
        let (source, target) = pairs[cursor];
        cursor = (cursor + 1) % pairs.len();
        black_box(kernel.route_ranked(words, source, target, hop_limit));
    };
    let (median, routes_per_sample, samples) = calibrated_median(smoke, route_one);
    let entry = perf::entry(
        "kernel_routing",
        name,
        overlay.key_space().bits(),
        q,
        median,
        routes_per_sample,
        samples,
    )
    .with_ns_per_hop(median / mean_hops);
    println!(
        "{:<40} {:>12.1} ns/route {:>10.1} ns/hop {:>14.0} routes/sec",
        entry.key(),
        entry.median_ns_per_route,
        entry.median_ns_per_hop.unwrap_or(0.0),
        entry.routes_per_sec
    );
    entry
}

/// Mean executed hops over the pair set (drops included at the hops they
/// travelled): the divisor that turns ns/route into ns/hop.
fn mean_executed_hops(
    kernel: &dht_overlay::RoutingKernel,
    words: &[u64],
    pairs: &[(u64, u64)],
    hop_limit: u32,
) -> f64 {
    let total_hops: u64 = pairs
        .iter()
        .map(
            |&(source, target)| match kernel.route_ranked(words, source, target, hop_limit) {
                RouteOutcome::Delivered { hops } | RouteOutcome::Dropped { hops, .. } => {
                    u64::from(hops)
                }
                RouteOutcome::HopLimitExceeded { limit } => u64::from(limit),
                RouteOutcome::SourceFailed | RouteOutcome::TargetFailed => 0,
            },
        )
        .sum();
    (total_hops as f64 / pairs.len().max(1) as f64).max(1e-9)
}

/// Measures one `(geometry, bits, q)` point of the lockstep batch
/// trajectory: the same mask and pair workload as [`measure_point`] and
/// [`measure_kernel_point`], but each timed invocation drives the *entire*
/// pair slice through [`RoutingKernel::route_batch`] — software-prefetched
/// plan rows, word-parallel aliveness, retire-and-refill compaction — and
/// the median is the per-invocation median divided by the slice length.
///
/// [`RoutingKernel::route_batch`]: dht_overlay::RoutingKernel::route_batch
fn measure_batch_point(
    name: &str,
    overlay: &dyn Overlay,
    q: f64,
    smoke: bool,
) -> perf::RoutingBenchEntry {
    let (mask, pairs) = trajectory_workload(overlay, q);
    let kernel = overlay.kernel().expect("all five geometries compile");
    let lowered = kernel.compile_mask(&mask);
    let words = lowered.words();
    let hop_limit = default_route_hop_limit(overlay);
    let mean_hops = mean_executed_hops(kernel, words, &pairs, hop_limit);

    let mut batch = RouteBatch::default();
    let mut outcomes = Vec::with_capacity(pairs.len());
    let route_all = || {
        kernel.route_batch(&mut batch, words, &pairs, hop_limit, &mut outcomes);
        black_box(&outcomes);
    };
    let (median_per_batch, batches_per_sample, samples) = calibrated_median(smoke, route_all);
    let median = median_per_batch / pairs.len() as f64;
    let entry = perf::entry(
        "batch_routing",
        name,
        overlay.key_space().bits(),
        q,
        median,
        batches_per_sample * pairs.len() as u64,
        samples,
    )
    .with_ns_per_hop(median / mean_hops);
    println!(
        "{:<40} {:>12.1} ns/route {:>10.1} ns/hop {:>14.0} routes/sec",
        entry.key(),
        entry.median_ns_per_route,
        entry.median_ns_per_hop.unwrap_or(0.0),
        entry.routes_per_sec
    );
    entry
}

/// Measures the perf trajectory at `2^16` and `2^20` — the scalar path and
/// the compiled kernel side by side — merges it into `BENCH_routing.json`,
/// and enforces the committed baseline when asked.
fn perf_trajectory() {
    let smoke = perf::smoke_mode();
    let mut entries = Vec::new();
    for bits in [16u32, 20] {
        for name in GEOMETRIES {
            let overlay = build_overlay(name, bits);
            for q in [0.0, 0.3] {
                entries.push(measure_point(name, overlay.as_ref(), q, smoke));
                entries.push(measure_kernel_point(name, overlay.as_ref(), q, smoke));
                entries.push(measure_batch_point(name, overlay.as_ref(), q, smoke));
            }
        }
    }
    perf::merge_into_output(entries.clone()).expect("BENCH_routing.json is writable");
    perf::enforce_baseline(&entries);
}

fn main() {
    benches();
    perf_trajectory();
}
