//! Benchmarks of the analytical RCM kernels: routability evaluation for every
//! geometry (the computation behind Fig. 6's analytical curves and the
//! scalability table), at the paper's `N = 2^16` operating point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_rcm_core::{classify, routability, Geometry, RoutingGeometry, SystemSize};
use std::hint::black_box;

fn bench_routability(c: &mut Criterion) {
    let size = SystemSize::power_of_two(16).expect("valid size");
    let mut group = c.benchmark_group("routability_n_2_16");
    for geometry in Geometry::all_with_default_parameters() {
        group.bench_with_input(
            BenchmarkId::from_parameter(geometry.name()),
            &geometry,
            |b, geometry| {
                b.iter(|| {
                    routability(black_box(geometry), black_box(size), black_box(0.3))
                        .expect("valid operating point")
                })
            },
        );
    }
    group.finish();
}

fn bench_scalability_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_classification");
    group.sample_size(20);
    for geometry in Geometry::all_with_default_parameters() {
        group.bench_with_input(
            BenchmarkId::from_parameter(geometry.name()),
            &geometry,
            |b, geometry| {
                b.iter(|| classify(black_box(geometry), black_box(0.1)).expect("valid q"))
            },
        );
    }
    group.finish();
}

fn bench_failure_sweep(c: &mut Criterion) {
    // The full analytical grid of Fig. 6(a): 19 points x 3 geometries.
    let size = SystemSize::power_of_two(16).expect("valid size");
    let grid = dht_mathkit::percent_grid(90, 5);
    c.bench_function("fig6a_analytical_grid", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for geometry in [Geometry::tree(), Geometry::hypercube(), Geometry::xor()] {
                for &q in &grid {
                    if let Ok(report) = routability(&geometry, size, q) {
                        total += report.failed_path_percent;
                    }
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_routability,
    bench_scalability_classification,
    bench_failure_sweep
);
criterion_main!(benches);
