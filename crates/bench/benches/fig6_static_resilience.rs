//! Benchmarks of the Fig. 6 reproduction pipeline: overlay construction and
//! static-resilience measurement for the four simulated geometries
//! (experiments E3/E4). Also contributes trial-engine measurement
//! throughput (ns per routed pair through `StaticResilienceExperiment`, now
//! routed through the lockstep batch internally) and raw `batch_routing`
//! entries at this bench's `2^12` size to the machine-readable
//! `BENCH_routing.json`; see [`dht_bench::perf`].

use criterion::{criterion_group, BenchmarkId, Criterion};
use dht_bench::perf;
use dht_overlay::{
    default_route_hop_limit, CanOverlay, ChordOverlay, ChordVariant, FailureMask, KademliaOverlay,
    Overlay, PlaxtonOverlay, RouteBatch,
};
use dht_sim::{PairSampler, StaticResilienceConfig, StaticResilienceExperiment};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 12;

fn bench_overlay_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_construction_2_12");
    group.sample_size(20);
    group.bench_function("hypercube", |b| {
        b.iter(|| CanOverlay::build(black_box(BITS)).expect("valid size"))
    });
    group.bench_function("tree", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            PlaxtonOverlay::build(black_box(BITS), &mut rng).expect("valid size")
        })
    });
    group.bench_function("xor", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            KademliaOverlay::build(black_box(BITS), &mut rng).expect("valid size")
        })
    });
    group.bench_function("ring", |b| {
        b.iter(|| {
            ChordOverlay::build(black_box(BITS), ChordVariant::Deterministic).expect("valid size")
        })
    });
    group.finish();
}

fn bench_static_resilience_measurement(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let overlays: Vec<(&str, Box<dyn Overlay + Sync>)> = vec![
        (
            "tree",
            Box::new(PlaxtonOverlay::build(BITS, &mut rng).unwrap()),
        ),
        ("hypercube", Box::new(CanOverlay::build(BITS).unwrap())),
        (
            "xor",
            Box::new(KademliaOverlay::build(BITS, &mut rng).unwrap()),
        ),
        (
            "ring",
            Box::new(ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap()),
        ),
    ];
    let config = StaticResilienceConfig::new(0.3)
        .expect("valid q")
        .with_pairs(2_000)
        .with_seed(11);
    let mut group = c.benchmark_group("fig6_measurement_q30_2000_pairs");
    group.sample_size(10);
    for (name, overlay) in &overlays {
        group.bench_with_input(BenchmarkId::from_parameter(name), overlay, |b, overlay| {
            b.iter(|| {
                StaticResilienceExperiment::new(config)
                    .run(black_box(overlay.as_ref()))
                    .routability
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_overlay_construction,
    bench_static_resilience_measurement
);

/// Contributes whole-pipeline throughput entries: ns per routed pair when
/// the pairs flow through the sharded trial engine (mask sampling, rank
/// sampling, routing and tallying included).
fn perf_trajectory() {
    let smoke = perf::smoke_mode();
    let pairs: u64 = if smoke { 5_000 } else { 50_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let overlays: Vec<(&str, Box<dyn Overlay>)> = vec![
        (
            "tree",
            Box::new(PlaxtonOverlay::build(BITS, &mut rng).unwrap()),
        ),
        ("hypercube", Box::new(CanOverlay::build(BITS).unwrap())),
        (
            "xor",
            Box::new(KademliaOverlay::build(BITS, &mut rng).unwrap()),
        ),
        (
            "ring",
            Box::new(ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap()),
        ),
    ];
    let config = StaticResilienceConfig::new(0.3)
        .expect("valid q")
        .with_pairs(pairs)
        .with_seed(11);
    let samples = if smoke { 3 } else { 5 };
    let mut entries = Vec::new();
    for (name, overlay) in &overlays {
        let median_per_experiment = perf::measure_median_ns(1, samples, || {
            black_box(
                StaticResilienceExperiment::new(config)
                    .run(black_box(overlay.as_ref()))
                    .routability,
            );
        });
        let median = median_per_experiment / pairs as f64;
        let entry = perf::entry(
            "fig6_static_resilience",
            name,
            BITS,
            0.3,
            median,
            pairs,
            samples,
        );
        println!(
            "{:<40} {:>12.1} ns/route {:>14.0} routes/sec",
            entry.key(),
            entry.median_ns_per_route,
            entry.routes_per_sec
        );
        entries.push(entry);
        entries.push(measure_batch_point(name, overlay.as_ref(), smoke));
    }
    perf::merge_into_output(entries.clone()).expect("BENCH_routing.json is writable");
    perf::enforce_baseline(&entries);
}

/// Contributes the lockstep-batch counterpart at this bench's size: the
/// same `q = 0.3` regime, a frozen mask and pre-drawn alive pairs, the
/// whole slice routed through [`RouteBatch`] per timed invocation. The
/// entry isolates raw batched routing from the engine's sampling and
/// tallying overhead the `fig6_static_resilience` entries include.
fn measure_batch_point(name: &str, overlay: &dyn Overlay, smoke: bool) -> perf::RoutingBenchEntry {
    let q = 0.3;
    let mask = FailureMask::sample(
        overlay.key_space(),
        q,
        &mut ChaCha8Rng::seed_from_u64(0x6D61_736B ^ u64::from(BITS)),
    );
    let sampler = PairSampler::new(&mask).expect("enough survivors at 2^12");
    let mut pair_rng = ChaCha8Rng::seed_from_u64(0x7061_6972 ^ u64::from(BITS));
    let mut pairs = Vec::new();
    sampler.sample_values_into(2_048, &mut pair_rng, &mut pairs);

    let kernel = overlay.kernel().expect("simulated geometries compile");
    let lowered = kernel.compile_mask(&mask);
    let words = lowered.words();
    let hop_limit = default_route_hop_limit(overlay);
    let mut batch = RouteBatch::default();
    let mut outcomes = Vec::with_capacity(pairs.len());
    let samples = if smoke { 3 } else { 5 };
    let batches_per_sample = if smoke { 32 } else { 128 };
    let median_per_batch = perf::measure_median_ns(batches_per_sample, samples, || {
        kernel.route_batch(&mut batch, words, &pairs, hop_limit, &mut outcomes);
        black_box(&outcomes);
    });
    let median = median_per_batch / pairs.len() as f64;
    let entry = perf::entry(
        "batch_routing",
        name,
        BITS,
        q,
        median,
        batches_per_sample * pairs.len() as u64,
        samples,
    );
    println!(
        "{:<40} {:>12.1} ns/route {:>14.0} routes/sec",
        entry.key(),
        entry.median_ns_per_route,
        entry.routes_per_sec
    );
    entry
}

fn main() {
    benches();
    perf_trajectory();
}
