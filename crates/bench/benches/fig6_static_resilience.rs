//! Benchmarks of the Fig. 6 reproduction pipeline: overlay construction and
//! static-resilience measurement for the four simulated geometries
//! (experiments E3/E4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_overlay::{
    CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay, Overlay, PlaxtonOverlay,
};
use dht_sim::{StaticResilienceConfig, StaticResilienceExperiment};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 12;

fn bench_overlay_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_construction_2_12");
    group.sample_size(20);
    group.bench_function("hypercube", |b| {
        b.iter(|| CanOverlay::build(black_box(BITS)).expect("valid size"))
    });
    group.bench_function("tree", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            PlaxtonOverlay::build(black_box(BITS), &mut rng).expect("valid size")
        })
    });
    group.bench_function("xor", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            KademliaOverlay::build(black_box(BITS), &mut rng).expect("valid size")
        })
    });
    group.bench_function("ring", |b| {
        b.iter(|| {
            ChordOverlay::build(black_box(BITS), ChordVariant::Deterministic).expect("valid size")
        })
    });
    group.finish();
}

fn bench_static_resilience_measurement(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let overlays: Vec<(&str, Box<dyn Overlay + Sync>)> = vec![
        (
            "tree",
            Box::new(PlaxtonOverlay::build(BITS, &mut rng).unwrap()),
        ),
        ("hypercube", Box::new(CanOverlay::build(BITS).unwrap())),
        (
            "xor",
            Box::new(KademliaOverlay::build(BITS, &mut rng).unwrap()),
        ),
        (
            "ring",
            Box::new(ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap()),
        ),
    ];
    let config = StaticResilienceConfig::new(0.3)
        .expect("valid q")
        .with_pairs(2_000)
        .with_seed(11);
    let mut group = c.benchmark_group("fig6_measurement_q30_2000_pairs");
    group.sample_size(10);
    for (name, overlay) in &overlays {
        group.bench_with_input(BenchmarkId::from_parameter(name), overlay, |b, overlay| {
            b.iter(|| {
                StaticResilienceExperiment::new(config)
                    .run(black_box(overlay.as_ref()))
                    .routability
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_overlay_construction,
    bench_static_resilience_measurement
);
criterion_main!(benches);
