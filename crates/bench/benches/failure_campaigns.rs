//! Benchmarks of the fault-injection campaign pipeline: [`FailurePlan`]
//! lowering per plan shape, and campaign-trial measurement throughput
//! (routing plus stuck-depth tallying through
//! `TrialEngine::run_campaign_trial`). The campaign-trial medians also feed
//! the machine-readable `BENCH_routing.json` as `campaign_routing` entries;
//! see [`dht_bench::perf`].

use criterion::{criterion_group, BenchmarkId, Criterion};
use dht_bench::perf;
use dht_overlay::{ChordOverlay, ChordVariant, FailurePlan, KademliaOverlay, Overlay};
use dht_sim::TrialEngine;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 12;
const FRACTION: f64 = 0.3;

/// One plan of each shape at the bench's failed fraction.
fn plan_catalogue() -> Vec<FailurePlan> {
    vec![
        FailurePlan::Uniform { fraction: FRACTION },
        FailurePlan::SegmentCorrelated {
            fraction: FRACTION,
            segments: 16,
        },
        FailurePlan::PrefixSubtree {
            fraction: FRACTION,
            prefix_bits: 4,
        },
        FailurePlan::AdaptiveAdversary {
            fraction: FRACTION,
            rounds: 4,
        },
        FailurePlan::Cascade {
            seed_fraction: FRACTION,
            propagation: 0.3,
        },
    ]
}

fn build_overlays() -> Vec<(&'static str, Box<dyn Overlay>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    vec![
        (
            "ring",
            Box::new(ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap())
                as Box<dyn Overlay>,
        ),
        (
            "xor",
            Box::new(KademliaOverlay::build(BITS, &mut rng).unwrap()),
        ),
    ]
}

/// Plan lowering alone: the cost of turning a declarative plan into a
/// frozen [`dht_overlay::FailureMask`] at `2^12` identifiers. The adaptive
/// adversary dominates (it scores fingers per round); the rest are
/// near-linear scans.
fn bench_plan_lowering(c: &mut Criterion) {
    let overlay = ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap();
    let mut group = c.benchmark_group("campaign_plan_lowering_2_12");
    group.sample_size(20);
    for plan in plan_catalogue() {
        group.bench_with_input(
            BenchmarkId::from_parameter(plan.name()),
            &plan,
            |b, plan| b.iter(|| black_box(plan.lower(black_box(&overlay), 2006))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_plan_lowering);

/// Contributes campaign-trial throughput entries: ns per routed pair when
/// the pairs flow through `run_campaign_trial` (pair sampling, batched
/// routing and stuck-depth tallying included) under a correlated-segment
/// mask, per simulated geometry.
fn perf_trajectory() {
    let smoke = perf::smoke_mode();
    let pairs: u64 = if smoke { 5_000 } else { 50_000 };
    let samples = if smoke { 3 } else { 5 };
    let plan = FailurePlan::SegmentCorrelated {
        fraction: FRACTION,
        segments: 16,
    };
    let engine = TrialEngine::new(1);
    let mut entries = Vec::new();
    for (name, overlay) in &build_overlays() {
        let mask = plan.lower(overlay.as_ref(), 2006);
        let median_per_trial = perf::measure_median_ns(1, samples, || {
            black_box(
                engine
                    .run_campaign_trial(black_box(overlay.as_ref()), &mask, pairs, 11)
                    .expect("survivors remain at q = 0.3"),
            );
        });
        let median = median_per_trial / pairs as f64;
        let entry = perf::entry(
            "campaign_routing",
            name,
            BITS,
            FRACTION,
            median,
            pairs,
            samples,
        );
        println!(
            "{:<40} {:>12.1} ns/route {:>14.0} routes/sec",
            entry.key(),
            entry.median_ns_per_route,
            entry.routes_per_sec
        );
        entries.push(entry);
    }
    perf::merge_into_output(entries.clone()).expect("BENCH_routing.json is writable");
    perf::enforce_baseline(&entries);
}

fn main() {
    benches();
    perf_trajectory();
}
