//! The implicit-backend perf trajectory: median ns/route and routes/sec for
//! generative routing tables, written into `BENCH_routing.json` next to the
//! materialized trajectories.
//!
//! At `2^20` the bench measures **both backends over bit-identical tables**
//! (the materialized build and the implicit replay of the same construction
//! stream), so `implicit_routing` vs `materialized_routing` entries isolate
//! the cost of regenerating rows on demand. At `2^26` and `2^28` — beyond
//! the materialized ceiling — only the implicit backend runs; those entries
//! are the headline numbers the scale work moves.
//!
//! Environment: `BENCH_SMOKE=1` shrinks the measurement budget,
//! `BENCH_OUTPUT`/`BENCH_BASELINE`/`BENCH_TOLERANCE` control the report —
//! see [`dht_bench::perf`].

use dht_bench::perf;
use dht_experiments::implicit_scale::build_implicit_overlay;
use dht_experiments::spec::build_full_overlay;
use dht_id::KeySpace;
use dht_overlay::{default_route_hop_limit, FailureMask, Overlay, RouteOutcome};
use dht_sim::{PairSampler, SeedSequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

/// Construction seed shared by both backends: `build_full_overlay` feeds its
/// shared stream from `child(0)` of this seed, and the implicit twin replays
/// exactly that stream, so every measured table is bit-identical.
const SEED: u64 = 2006;

/// The two geometries the scale experiments headline.
const GEOMETRIES: [&str; 2] = ["ring", "xor"];

/// The frozen mask and alive pair set for one `(bits, q)` point — the same
/// seed convention as `overlay_routing`, so entries are comparable across
/// bench targets. Geometry-independent: callers build it once per point and
/// share it across geometries and backends.
fn workload_at(bits: u32, q: f64) -> (FailureMask, Vec<(u64, u64)>) {
    let space = KeySpace::new(bits).unwrap();
    let mask = FailureMask::sample(
        space,
        q,
        &mut ChaCha8Rng::seed_from_u64(0x6D61_736B ^ u64::from(bits)),
    );
    let sampler = PairSampler::new(&mask).expect("enough survivors at these sizes");
    let mut pair_rng = ChaCha8Rng::seed_from_u64(0x7061_6972 ^ u64::from(bits));
    let pairs: Vec<(u64, u64)> = (0..4096)
        .map(|_| sampler.sample_values(&mut pair_rng))
        .collect();
    (mask, pairs)
}

/// Calibrates routes-per-sample to the mode's wall-clock target and returns
/// `(median_ns_per_route, routes_per_sample, samples)`.
fn calibrated_median<F: FnMut()>(smoke: bool, mut route_one: F) -> (f64, u64, u64) {
    let calibration_ns = perf::measure_median_ns(64, 1, &mut route_one).max(1.0);
    let (target_sample_ns, samples) = if smoke { (25e6, 5) } else { (100e6, 7) };
    let routes_per_sample = ((target_sample_ns / calibration_ns) as u64).clamp(64, 500_000);
    let median = perf::measure_median_ns(routes_per_sample, samples, &mut route_one);
    (median, routes_per_sample, samples)
}

fn print_entry(entry: &perf::RoutingBenchEntry) {
    println!(
        "{:<44} {:>12.1} ns/route {:>10.1} ns/hop {:>14.0} routes/sec",
        entry.key(),
        entry.median_ns_per_route,
        entry.median_ns_per_hop.unwrap_or(0.0),
        entry.routes_per_sec
    );
}

/// Measures the implicit kernel over the shared workload: per-route median
/// through `route_ranked` with a warm per-thread row cache, exactly how the
/// trial engine drives the backend per shard.
fn measure_implicit_point(
    name: &str,
    overlay: &dyn Overlay,
    mask: &FailureMask,
    pairs: &[(u64, u64)],
    q: f64,
    smoke: bool,
) -> perf::RoutingBenchEntry {
    let kernel = overlay
        .implicit_kernel()
        .expect("the implicit backend exports its kernel");
    let lowered = kernel.compile_mask(mask);
    let words = lowered.words();
    let hop_limit = default_route_hop_limit(overlay);
    let mut cache = kernel.row_cache();

    let mean_hops = {
        let total: u64 = pairs
            .iter()
            .map(|&(source, target)| {
                match kernel.route_ranked(&mut cache, words, source, target, hop_limit) {
                    RouteOutcome::Delivered { hops } | RouteOutcome::Dropped { hops, .. } => {
                        u64::from(hops)
                    }
                    RouteOutcome::HopLimitExceeded { limit } => u64::from(limit),
                    RouteOutcome::SourceFailed | RouteOutcome::TargetFailed => 0,
                }
            })
            .sum();
        (total as f64 / pairs.len().max(1) as f64).max(1e-9)
    };

    let mut cursor = 0usize;
    let route_one = || {
        let (source, target) = pairs[cursor];
        cursor = (cursor + 1) % pairs.len();
        black_box(kernel.route_ranked(&mut cache, words, source, target, hop_limit));
    };
    let (median, routes_per_sample, samples) = calibrated_median(smoke, route_one);
    let entry = perf::entry(
        "implicit_routing",
        name,
        overlay.key_space().bits(),
        q,
        median,
        routes_per_sample,
        samples,
    )
    .with_ns_per_hop(median / mean_hops);
    print_entry(&entry);
    entry
}

/// Measures the materialized kernel over the same workload — the twin entry
/// that turns each `2^20` implicit number into a backend comparison.
fn measure_materialized_point(
    name: &str,
    overlay: &dyn Overlay,
    mask: &FailureMask,
    pairs: &[(u64, u64)],
    q: f64,
    smoke: bool,
) -> perf::RoutingBenchEntry {
    let kernel = overlay.kernel().expect("materialized builds compile");
    let lowered = kernel.compile_mask(mask);
    let words = lowered.words();
    let hop_limit = default_route_hop_limit(overlay);

    let mut cursor = 0usize;
    let route_one = || {
        let (source, target) = pairs[cursor];
        cursor = (cursor + 1) % pairs.len();
        black_box(kernel.route_ranked(words, source, target, hop_limit));
    };
    let (median, routes_per_sample, samples) = calibrated_median(smoke, route_one);
    let entry = perf::entry(
        "materialized_routing",
        name,
        overlay.key_space().bits(),
        q,
        median,
        routes_per_sample,
        samples,
    );
    print_entry(&entry);
    entry
}

fn main() {
    let smoke = perf::smoke_mode();
    let mut entries = Vec::new();

    // Both backends at 2^20, bit-identical tables, shared workload.
    for q in [0.0, 0.3] {
        let (mask, pairs) = workload_at(20, q);
        for name in GEOMETRIES {
            let materialized = build_full_overlay(name, 20, SEED).unwrap();
            entries.push(measure_materialized_point(
                name,
                materialized.as_ref(),
                &mask,
                &pairs,
                q,
                smoke,
            ));
            drop(materialized);
            let implicit =
                build_implicit_overlay(name, 20, SeedSequence::new(SEED).child(0)).unwrap();
            entries.push(measure_implicit_point(
                name,
                implicit.as_ref(),
                &mask,
                &pairs,
                q,
                smoke,
            ));
        }
    }

    // Beyond the materialized ceiling: implicit only.
    for bits in [26u32, 28] {
        for q in [0.0, 0.3] {
            let (mask, pairs) = workload_at(bits, q);
            for name in GEOMETRIES {
                let implicit =
                    build_implicit_overlay(name, bits, SeedSequence::new(SEED).child(0)).unwrap();
                entries.push(measure_implicit_point(
                    name,
                    implicit.as_ref(),
                    &mask,
                    &pairs,
                    q,
                    smoke,
                ));
            }
        }
    }

    perf::merge_into_output(entries.clone()).expect("BENCH_routing.json is writable");
    perf::enforce_baseline(&entries);
}
