//! Benchmarks of overlay construction into the shared CSR arena, across the
//! five geometries and across occupancies — the fixed cost every simulated
//! figure pays before routing a single message.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_id::{KeySpace, Population};
use dht_overlay::{
    CanOverlay, ChordOverlay, ChordVariant, KademliaOverlay, PlaxtonOverlay, SymphonyOverlay,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

const BITS: u32 = 12;

fn bench_full_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_build_full_2_12");
    group.bench_function(BenchmarkId::from_parameter("tree"), |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            black_box(PlaxtonOverlay::build(BITS, &mut rng).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("hypercube"), |b| {
        b.iter(|| black_box(CanOverlay::build(BITS).unwrap()))
    });
    group.bench_function(BenchmarkId::from_parameter("xor"), |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            black_box(KademliaOverlay::build(BITS, &mut rng).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("ring"), |b| {
        b.iter(|| black_box(ChordOverlay::build(BITS, ChordVariant::Deterministic).unwrap()))
    });
    group.bench_function(BenchmarkId::from_parameter("symphony"), |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            black_box(SymphonyOverlay::build(BITS, 1, 1, &mut rng).unwrap())
        })
    });
    group.finish();
}

fn bench_sparse_build(c: &mut Criterion) {
    let space = KeySpace::new(BITS).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let population = Population::sample_uniform(space, 1 << (BITS - 2), &mut rng).unwrap();
    let mut group = c.benchmark_group("overlay_build_sparse_2_12_quarter");
    group.bench_function(BenchmarkId::from_parameter("ring"), |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            black_box(
                ChordOverlay::build_over(population.clone(), ChordVariant::Randomized, &mut rng)
                    .unwrap(),
            )
        })
    });
    group.bench_function(BenchmarkId::from_parameter("xor"), |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            black_box(KademliaOverlay::build_over(population.clone(), &mut rng).unwrap())
        })
    });
    group.bench_function(BenchmarkId::from_parameter("hypercube"), |b| {
        b.iter(|| black_box(CanOverlay::build_over(population.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_full_build, bench_sparse_build);
criterion_main!(benches);
