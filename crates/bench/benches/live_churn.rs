//! Benchmarks of the live-churn discrete-event engine: whole-simulation
//! event throughput with incremental overlay repair on the hot path.
//! Contributes `live_churn` entries to the machine-readable
//! `BENCH_routing.json` — here `median_ns_per_route` is **ns per processed
//! event** and `routes_per_sec` is **events per second** (departures,
//! returns and lookups all count; repair work is attributed to the event
//! that caused it). See [`dht_bench::perf`].

use criterion::{criterion_group, BenchmarkId, Criterion};
use dht_bench::perf;
use dht_id::{KeySpace, Population};
use dht_overlay::chord::ChordStrategy;
use dht_overlay::kademlia::KademliaStrategy;
use dht_overlay::{ChordVariant, GeometryStrategy, LiveOverlay};
use dht_sim::{LifetimeDistribution, LiveChurnConfig, LiveChurnExperiment, LiveChurnTally};
use std::hint::black_box;

const BITS: u32 = 8;

/// The measured workload: one replica of exponential churn (`E[L] = 2`,
/// `E[D] = 0.5`, so `q* = 0.2`) with Poisson lookups, repair mode on —
/// every departure and return delta-patches the overlay.
fn config(duration: f64) -> LiveChurnConfig {
    LiveChurnConfig::new(
        LifetimeDistribution::exponential(2.0).expect("valid mean"),
        LifetimeDistribution::exponential(0.5).expect("valid mean"),
        duration,
        300.0,
    )
    .expect("valid horizon")
    .with_repair(true)
    .with_seed(23)
}

fn run_once<S: GeometryStrategy + Clone>(
    experiment: &LiveChurnExperiment,
    strategy: S,
) -> LiveChurnTally {
    let space = KeySpace::new(BITS).expect("valid bits");
    experiment.run(move |master_seed| {
        LiveOverlay::build(Population::full(space), strategy.clone(), master_seed)
            .expect("geometry supports live churn")
    })
}

fn bench_live_churn(c: &mut Criterion) {
    let experiment = LiveChurnExperiment::new(config(4.0));
    let mut group = c.benchmark_group("live_churn_repair_2_8");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("ring"), &experiment, |b, e| {
        b.iter(|| black_box(run_once(e, ChordStrategy::new(ChordVariant::Deterministic)).events))
    });
    group.bench_with_input(BenchmarkId::from_parameter("xor"), &experiment, |b, e| {
        b.iter(|| black_box(run_once(e, KademliaStrategy).events))
    });
    group.finish();
}

criterion_group!(benches, bench_live_churn);

/// Contributes event-throughput entries: the engine is deterministic, so
/// the event count of a run is fixed per configuration and the median
/// run time divides into a stable ns-per-event figure.
fn perf_trajectory() {
    let smoke = perf::smoke_mode();
    let duration = if smoke { 5.0 } else { 20.0 };
    let samples = if smoke { 3 } else { 5 };
    let experiment = LiveChurnExperiment::new(config(duration));
    let mut entries = Vec::new();

    let ring_events = run_once(&experiment, ChordStrategy::new(ChordVariant::Deterministic)).events;
    let ring_median = perf::measure_median_ns(1, samples, || {
        black_box(run_once(
            &experiment,
            ChordStrategy::new(ChordVariant::Deterministic),
        ));
    }) / ring_events as f64;
    entries.push(perf::entry(
        "live_churn",
        "ring",
        BITS,
        0.2,
        ring_median,
        ring_events,
        samples,
    ));

    let xor_events = run_once(&experiment, KademliaStrategy).events;
    let xor_median = perf::measure_median_ns(1, samples, || {
        black_box(run_once(&experiment, KademliaStrategy));
    }) / xor_events as f64;
    entries.push(perf::entry(
        "live_churn",
        "xor",
        BITS,
        0.2,
        xor_median,
        xor_events,
        samples,
    ));

    for entry in &entries {
        println!(
            "{:<40} {:>12.1} ns/event {:>14.0} events/sec",
            entry.key(),
            entry.median_ns_per_route,
            entry.routes_per_sec
        );
    }
    perf::merge_into_output(entries.clone()).expect("BENCH_routing.json is writable");
    perf::enforce_baseline(&entries);
}

fn main() {
    benches();
    perf_trajectory();
}
