//! Benchmarks of the Markov-chain substrate (experiments E2/E8): chain
//! construction plus absorption solving for each routing geometry, and the
//! full closed-form validation harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dht_experiments::markov_validation;
use dht_markov::chains::{hypercube_chain, ring_chain, symphony_chain, tree_chain, xor_chain};
use std::hint::black_box;

fn bench_chain_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_success_probability_h16_q30");
    let h = 16u32;
    let q = 0.3f64;
    group.bench_function(BenchmarkId::from_parameter("tree"), |b| {
        b.iter(|| {
            tree_chain(black_box(h), black_box(q))
                .unwrap()
                .success_probability()
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("hypercube"), |b| {
        b.iter(|| {
            hypercube_chain(black_box(h), black_box(q))
                .unwrap()
                .success_probability()
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("xor"), |b| {
        b.iter(|| {
            xor_chain(black_box(h), black_box(q))
                .unwrap()
                .success_probability()
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("ring"), |b| {
        b.iter(|| {
            ring_chain(black_box(h), black_box(q))
                .unwrap()
                .success_probability()
                .unwrap()
        })
    });
    group.bench_function(BenchmarkId::from_parameter("symphony"), |b| {
        b.iter(|| {
            symphony_chain(black_box(h), black_box(q), 1, 1, 16)
                .unwrap()
                .success_probability()
                .unwrap()
        })
    });
    group.finish();
}

fn bench_full_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_validation_harness");
    group.sample_size(10);
    group.bench_function("h12_three_q_points", |b| {
        b.iter(|| markov_validation::run(black_box(12), black_box(&[0.1, 0.5, 0.9])).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_chain_solve, bench_full_validation);
criterion_main!(benches);
