//! Absorption analysis of acyclic routing chains.
//!
//! All five routing chains of the paper are feed-forward: every hop either
//! advances a phase, burns one of a bounded number of suboptimal hops, or
//! drops the message. Absorption probabilities can therefore be computed by a
//! single memoised traversal rather than a linear solve.

use crate::chain::{ChainError, MarkovChain, StateId};

/// Probability of eventually being absorbed in `target` when starting from
/// `start`.
///
/// # Errors
///
/// * [`ChainError::UnknownState`] if either state does not belong to the chain.
/// * [`ChainError::NotAbsorbing`] if `target` is not an absorbing state.
/// * [`ChainError::CycleDetected`] if the chain is not acyclic.
///
/// # Example
///
/// ```rust
/// use dht_markov::{ChainBuilder, solver::absorption_probability};
///
/// let mut b = ChainBuilder::new();
/// let s0 = b.add_state("S0");
/// let s1 = b.add_state("S1");
/// let ok = b.add_state("ok");
/// let fail = b.add_state("F");
/// b.add_transition(s0, s1, 0.9)?;
/// b.add_transition(s0, fail, 0.1)?;
/// b.add_transition(s1, ok, 0.8)?;
/// b.add_transition(s1, fail, 0.2)?;
/// let chain = b.build()?;
/// let p = absorption_probability(&chain, s0, ok)?;
/// assert!((p - 0.72).abs() < 1e-12);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
pub fn absorption_probability(
    chain: &MarkovChain,
    start: StateId,
    target: StateId,
) -> Result<f64, ChainError> {
    let all = absorption_probabilities(chain, target)?;
    all.get(start.index())
        .copied()
        .ok_or(ChainError::UnknownState {
            state: start.index(),
        })
}

/// Probability of eventual absorption in `target` from *every* state of the
/// chain, indexed by state.
///
/// # Errors
///
/// See [`absorption_probability`].
pub fn absorption_probabilities(
    chain: &MarkovChain,
    target: StateId,
) -> Result<Vec<f64>, ChainError> {
    if target.index() >= chain.len() {
        return Err(ChainError::UnknownState {
            state: target.index(),
        });
    }
    if !chain.is_absorbing(target) {
        return Err(ChainError::NotAbsorbing {
            state: target.index(),
        });
    }
    let order = topological_order(chain)?;
    let mut prob = vec![0.0f64; chain.len()];
    prob[target.index()] = 1.0;
    // Process states in reverse topological order so every successor is final
    // before its predecessors are evaluated.
    for &state in order.iter().rev() {
        if state == target.index() {
            continue;
        }
        let transitions = chain.transitions(StateId(state));
        if transitions.is_empty() {
            continue; // other absorbing state, probability stays 0
        }
        prob[state] = transitions.iter().map(|&(to, p)| p * prob[to]).sum();
    }
    Ok(prob)
}

/// Expected number of steps before absorption (in any absorbing state) when
/// starting from `start`.
///
/// For the routing chains this is the expected number of hops (tree,
/// hypercube) or hops including suboptimal detours (XOR, ring, Symphony)
/// before the message is either delivered or dropped.
///
/// # Errors
///
/// See [`absorption_probability`].
pub fn expected_steps(chain: &MarkovChain, start: StateId) -> Result<f64, ChainError> {
    if start.index() >= chain.len() {
        return Err(ChainError::UnknownState {
            state: start.index(),
        });
    }
    let order = topological_order(chain)?;
    let mut steps = vec![0.0f64; chain.len()];
    for &state in order.iter().rev() {
        let transitions = chain.transitions(StateId(state));
        if transitions.is_empty() {
            continue;
        }
        steps[state] = 1.0
            + transitions
                .iter()
                .map(|&(to, p)| p * steps[to])
                .sum::<f64>();
    }
    Ok(steps[start.index()])
}

/// Computes a topological order of the chain's states.
///
/// # Errors
///
/// Returns [`ChainError::CycleDetected`] if the chain contains a directed
/// cycle (self-loops included).
fn topological_order(chain: &MarkovChain) -> Result<Vec<usize>, ChainError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        InProgress,
        Done,
    }
    let n = chain.len();
    let mut marks = vec![Mark::Unvisited; n];
    let mut order = Vec::with_capacity(n);
    // Iterative DFS to avoid stack overflow on large ring chains.
    for root in 0..n {
        if marks[root] != Mark::Unvisited {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        marks[root] = Mark::InProgress;
        while let Some(&mut (state, ref mut next_edge)) = stack.last_mut() {
            let transitions = chain.transitions(StateId(state));
            if *next_edge < transitions.len() {
                let (to, _) = transitions[*next_edge];
                *next_edge += 1;
                match marks[to] {
                    Mark::Unvisited => {
                        marks[to] = Mark::InProgress;
                        stack.push((to, 0));
                    }
                    Mark::InProgress => return Err(ChainError::CycleDetected { state: to }),
                    Mark::Done => {}
                }
            } else {
                marks[state] = Mark::Done;
                order.push(state);
                stack.pop();
            }
        }
    }
    order.reverse();
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainBuilder;

    fn two_coin_chain() -> (MarkovChain, StateId, StateId, StateId) {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let s1 = b.add_state("S1");
        let ok = b.add_state("ok");
        let fail = b.add_state("F");
        b.add_transition(s0, s1, 0.9).unwrap();
        b.add_transition(s0, fail, 0.1).unwrap();
        b.add_transition(s1, ok, 0.8).unwrap();
        b.add_transition(s1, fail, 0.2).unwrap();
        (b.build().unwrap(), s0, ok, fail)
    }

    #[test]
    fn absorption_probability_of_two_step_chain() {
        let (chain, s0, ok, fail) = two_coin_chain();
        assert!((absorption_probability(&chain, s0, ok).unwrap() - 0.72).abs() < 1e-12);
        assert!((absorption_probability(&chain, s0, fail).unwrap() - 0.28).abs() < 1e-12);
    }

    #[test]
    fn probabilities_from_all_states() {
        let (chain, _s0, ok, _fail) = two_coin_chain();
        let probs = absorption_probabilities(&chain, ok).unwrap();
        assert_eq!(probs.len(), 4);
        assert!((probs[0] - 0.72).abs() < 1e-12);
        assert!((probs[1] - 0.8).abs() < 1e-12);
        assert_eq!(probs[2], 1.0);
        assert_eq!(probs[3], 0.0);
    }

    #[test]
    fn absorption_probabilities_sum_to_one() {
        let (chain, s0, ok, fail) = two_coin_chain();
        let p_ok = absorption_probability(&chain, s0, ok).unwrap();
        let p_fail = absorption_probability(&chain, s0, fail).unwrap();
        assert!((p_ok + p_fail - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expected_steps_of_two_step_chain() {
        let (chain, s0, _ok, _fail) = two_coin_chain();
        // One step always happens; a second happens with probability 0.9.
        assert!((expected_steps(&chain, s0).unwrap() - 1.9).abs() < 1e-12);
    }

    #[test]
    fn starting_at_absorbing_state() {
        let (chain, _s0, ok, fail) = two_coin_chain();
        assert_eq!(absorption_probability(&chain, ok, ok).unwrap(), 1.0);
        assert_eq!(absorption_probability(&chain, fail, ok).unwrap(), 0.0);
        assert_eq!(expected_steps(&chain, ok).unwrap(), 0.0);
    }

    #[test]
    fn rejects_non_absorbing_target() {
        let (chain, s0, _ok, _fail) = two_coin_chain();
        assert!(matches!(
            absorption_probability(&chain, s0, s0),
            Err(ChainError::NotAbsorbing { .. })
        ));
    }

    #[test]
    fn rejects_unknown_states() {
        let (chain, _s0, ok, _fail) = two_coin_chain();
        assert!(matches!(
            absorption_probability(&chain, StateId(99), ok),
            Err(ChainError::UnknownState { state: 99 })
        ));
        assert!(matches!(
            absorption_probabilities(&chain, StateId(99)),
            Err(ChainError::UnknownState { state: 99 })
        ));
    }

    #[test]
    fn detects_cycles() {
        let mut b = ChainBuilder::new();
        let a = b.add_state("a");
        let c = b.add_state("c");
        let sink = b.add_state("sink");
        b.add_transition(a, c, 0.5).unwrap();
        b.add_transition(a, sink, 0.5).unwrap();
        b.add_transition(c, a, 0.5).unwrap();
        b.add_transition(c, sink, 0.5).unwrap();
        let chain = b.build().unwrap();
        assert!(matches!(
            absorption_probability(&chain, a, sink),
            Err(ChainError::CycleDetected { .. })
        ));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // A long linear chain exercises the iterative DFS.
        let mut b = ChainBuilder::new();
        let states: Vec<_> = (0..200_000).map(|i| b.add_state(format!("s{i}"))).collect();
        for w in states.windows(2) {
            b.add_transition(w[0], w[1], 1.0).unwrap();
        }
        let chain = b.build().unwrap();
        let p = absorption_probability(&chain, states[0], *states.last().unwrap()).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
    }
}
