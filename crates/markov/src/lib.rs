//! Absorbing Markov chain models of DHT routing under random failure.
//!
//! Section 4 of the RCM paper derives every per-phase failure probability
//! `Q(m)` by inspecting a routing Markov chain (Fig. 4(a), 4(b), 5(b), 8(a)
//! and 8(b)). This crate makes those chains executable:
//!
//! * [`chain`] — a generic absorbing discrete-time Markov chain with sparse
//!   transitions and validation.
//! * [`solver`] — absorption probabilities and expected absorption time for
//!   acyclic (feed-forward) chains, which all five routing chains are.
//! * [`chains`] — builders that construct the exact chain of each figure, so
//!   the closed-form expressions of the core crate can be validated against a
//!   direct numerical evaluation of the model they were derived from.
//!
//! # Example
//!
//! ```rust
//! use dht_markov::chains::hypercube_chain;
//!
//! // Probability of successfully routing h = 3 hops in a hypercube with
//! // node-failure probability q = 0.5. Equation 2 of the paper gives
//! // (1 - q)(1 - q^2)(1 - q^3) = 0.328125.
//! let chain = hypercube_chain(3, 0.5)?;
//! let p = chain.success_probability()?;
//! assert!((p - 0.328125).abs() < 1e-12);
//! # Ok::<(), dht_markov::ChainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod chain;
pub mod chains;
pub mod solver;

pub use cache::{ChainCache, ChainCacheEntry, ChainFamily};
pub use chain::{ChainBuilder, ChainError, MarkovChain, StateId};
pub use chains::{
    hypercube_chain, ring_chain, symphony_chain, tree_chain, xor_chain, RoutingChain,
};
pub use solver::{absorption_probabilities, absorption_probability, expected_steps};
