//! The small-world (Symphony) routing chain of Fig. 8(b).

use super::{validate_params, RoutingChain, MAX_SUBOPTIMAL_STATES};
use crate::chain::{ChainBuilder, ChainError};

/// Builds the Symphony routing chain for a target `h` phases away under
/// failure probability `q`, with `k_n` near neighbours, `k_s` shortcuts and
/// identifier length `d` bits.
///
/// Every state of every phase has the same transition probabilities
/// (§3.5 / §4.3.4 of the paper):
///
/// * advance with probability `x = k_s / d` (a shortcut lands in the desired
///   phase);
/// * drop with probability `y = q^{k_n + k_s}` (all connections are dead);
/// * otherwise take a suboptimal hop with probability `1 − x − y`, at most
///   `⌈d / (1 − q)⌉` times per phase.
///
/// Because `Q_sym` does not depend on the phase index, `Σ Q(m)` diverges and
/// the geometry is unscalable (§5.5).
///
/// # Errors
///
/// Returns [`ChainError::InvalidParameter`] if `h == 0`, `q ∉ [0, 1]`,
/// `k_n == 0`, `k_s == 0`, `k_s > d`, `h > d`, or if `q = 1` (the per-phase
/// advance/drop probabilities would exceed one only through `x + y > 1`,
/// which is rejected).
///
/// # Example
///
/// ```rust
/// use dht_markov::chains::symphony_chain;
///
/// // More shortcuts mean better per-phase success.
/// let sparse = symphony_chain(8, 0.2, 1, 1, 16)?.success_probability()?;
/// let dense = symphony_chain(8, 0.2, 1, 4, 16)?.success_probability()?;
/// assert!(dense > sparse);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
pub fn symphony_chain(
    h: u32,
    q: f64,
    near_neighbors: u32,
    shortcuts: u32,
    d: u32,
) -> Result<RoutingChain, ChainError> {
    validate_params(h, q)?;
    if near_neighbors == 0 || shortcuts == 0 {
        return Err(ChainError::InvalidParameter {
            message: "Symphony needs at least one near neighbour and one shortcut".into(),
        });
    }
    if d == 0 || shortcuts > d {
        return Err(ChainError::InvalidParameter {
            message: format!(
                "identifier length d={d} must be positive and at least k_s={shortcuts}"
            ),
        });
    }
    if h > d {
        return Err(ChainError::InvalidParameter {
            message: format!("phase count h={h} cannot exceed identifier length d={d}"),
        });
    }
    let x = f64::from(shortcuts) / f64::from(d);
    let y = q.powi((near_neighbors + shortcuts) as i32);
    if x + y > 1.0 + 1e-12 {
        return Err(ChainError::InvalidParameter {
            message: format!(
                "advance probability k_s/d = {x} plus drop probability q^(k_n+k_s) = {y} exceeds one"
            ),
        });
    }
    let suboptimal = (1.0 - x - y).max(0.0);
    // Maximum number of suboptimal hops per phase, ⌈d / (1 − q)⌉ (the paper's
    // approximation), truncated for tractability when q → 1.
    let max_suboptimal: u64 = if q >= 1.0 {
        MAX_SUBOPTIMAL_STATES
    } else {
        ((f64::from(d) / (1.0 - q)).ceil() as u64).min(MAX_SUBOPTIMAL_STATES)
    };

    let mut builder = ChainBuilder::new();
    let failure = builder.add_state("F");
    let phase_entry: Vec<_> = (0..=h)
        .map(|i| builder.add_state(format!("S{i}")))
        .collect();
    let success = phase_entry[h as usize];

    for i in 0..h {
        let next_phase = phase_entry[(i + 1) as usize];
        let mut current = phase_entry[i as usize];
        for position in 0..=max_suboptimal {
            let is_last = position == max_suboptimal;
            if is_last || suboptimal == 0.0 {
                builder.add_transition(current, next_phase, x + suboptimal)?;
                builder.add_transition(current, failure, y)?;
                break;
            }
            builder.add_transition(current, next_phase, x)?;
            builder.add_transition(current, failure, y)?;
            let next_sub = builder.add_state(format!("({i},{})", position + 1));
            builder.add_transition(current, next_sub, suboptimal)?;
            current = next_sub;
        }
    }

    let chain = builder.build()?;
    Ok(RoutingChain::new(
        chain,
        phase_entry[0],
        success,
        failure,
        h,
        q,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Eq. 7 evaluated as the exact finite sum (before the paper's geometric
    /// closed-form approximation).
    fn q_sym(q: f64, kn: u32, ks: u32, d: u32) -> f64 {
        let x = f64::from(ks) / f64::from(d);
        let y = q.powi((kn + ks) as i32);
        let z = 1.0 - x - y;
        let max_j = ((f64::from(d) / (1.0 - q)).ceil() as u64).min(MAX_SUBOPTIMAL_STATES);
        (0..=max_j).map(|j| y * z.powi(j as i32)).sum()
    }

    fn closed_form(h: u32, q: f64, kn: u32, ks: u32, d: u32) -> f64 {
        (1.0 - q_sym(q, kn, ks, d)).powi(h as i32)
    }

    #[test]
    fn matches_equation_seven() {
        for &q in &[0.1, 0.3, 0.5, 0.7] {
            for h in 1..=10u32 {
                let chain = symphony_chain(h, q, 1, 1, 16).unwrap();
                let got = chain.success_probability().unwrap();
                let want = closed_form(h, q, 1, 1, 16);
                assert!(
                    (got - want).abs() < 1e-9,
                    "h={h} q={q}: chain {got} vs closed form {want}"
                );
            }
        }
    }

    #[test]
    fn no_failure_still_takes_detours_but_never_drops() {
        // With q = 0 messages are never dropped; success is certain.
        let chain = symphony_chain(6, 0.0, 1, 1, 16).unwrap();
        assert!((chain.success_probability().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_neighbors_improve_robustness() {
        let q = 0.4;
        let base = symphony_chain(8, q, 1, 1, 16)
            .unwrap()
            .success_probability()
            .unwrap();
        let more_near = symphony_chain(8, q, 4, 1, 16)
            .unwrap()
            .success_probability()
            .unwrap();
        let more_short = symphony_chain(8, q, 1, 4, 16)
            .unwrap()
            .success_probability()
            .unwrap();
        assert!(more_near > base);
        assert!(more_short > base);
    }

    #[test]
    fn per_phase_failure_is_constant_across_phases() {
        // Ratio p(h+1)/p(h) should be the constant 1 - Q_sym.
        let (q, kn, ks, d) = (0.3, 1, 1, 20);
        let expected_ratio = 1.0 - q_sym(q, kn, ks, d);
        let mut previous = 1.0;
        for h in 1..=8u32 {
            let p = symphony_chain(h, q, kn, ks, d)
                .unwrap()
                .success_probability()
                .unwrap();
            let ratio = p / previous;
            assert!((ratio - expected_ratio).abs() < 1e-9, "h={h}");
            previous = p;
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(symphony_chain(4, 0.2, 0, 1, 16).is_err());
        assert!(symphony_chain(4, 0.2, 1, 0, 16).is_err());
        assert!(symphony_chain(4, 0.2, 1, 17, 16).is_err());
        assert!(symphony_chain(20, 0.2, 1, 1, 16).is_err());
        assert!(symphony_chain(4, 0.2, 1, 1, 0).is_err());
    }

    #[test]
    fn expected_hops_reflect_suboptimal_detours() {
        // With only shortcuts advancing phases (x = 1/16) and few failures the
        // expected number of hops per phase is roughly 1/x.
        let chain = symphony_chain(1, 0.05, 2, 1, 16).unwrap();
        let hops = chain.expected_hops().unwrap();
        assert!(hops > 5.0 && hops < 20.0, "hops = {hops}");
    }
}
