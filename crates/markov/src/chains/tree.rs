//! The tree (Plaxton) routing chain of Fig. 4(a).

use super::{validate_params, RoutingChain};
use crate::chain::{ChainBuilder, ChainError};

/// Builds the tree-routing chain for a target `h` hops away under failure
/// probability `q`.
///
/// At each state the single neighbour that corrects the leftmost differing
/// bit must be alive; the message advances with probability `1 − q` and is
/// dropped with probability `q` (§3.1 of the paper). The resulting success
/// probability is `p(h, q) = (1 − q)^h`.
///
/// # Errors
///
/// Returns [`ChainError::InvalidParameter`] if `h == 0` or `q ∉ [0, 1]`.
///
/// # Example
///
/// ```rust
/// use dht_markov::chains::tree_chain;
///
/// let chain = tree_chain(10, 0.1)?;
/// assert!((chain.success_probability()? - 0.9f64.powi(10)).abs() < 1e-12);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
pub fn tree_chain(h: u32, q: f64) -> Result<RoutingChain, ChainError> {
    validate_params(h, q)?;
    let mut builder = ChainBuilder::new();
    let failure = builder.add_state("F");
    let states: Vec<_> = (0..=h)
        .map(|i| builder.add_state(format!("S{i}")))
        .collect();
    for i in 0..h as usize {
        builder.add_transition(states[i], states[i + 1], 1.0 - q)?;
        builder.add_transition(states[i], failure, q)?;
    }
    let chain = builder.build()?;
    Ok(RoutingChain::new(
        chain,
        states[0],
        states[h as usize],
        failure,
        h,
        q,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form_for_grid() {
        for h in 1..=20u32 {
            for &q in &[0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0] {
                let chain = tree_chain(h, q).unwrap();
                let expected = (1.0 - q).powi(h as i32);
                assert!(
                    (chain.success_probability().unwrap() - expected).abs() < 1e-12,
                    "h={h} q={q}"
                );
            }
        }
    }

    #[test]
    fn state_count_is_linear_in_h() {
        let chain = tree_chain(12, 0.3).unwrap();
        // h+1 routing states plus the failure state.
        assert_eq!(chain.markov().len(), 14);
    }

    #[test]
    fn expected_hops_matches_truncated_geometric() {
        // E[steps] = Σ_{i=0}^{h-1} (1-q)^i : each additional hop is attempted
        // only if all previous hops succeeded.
        let (h, q) = (6u32, 0.4f64);
        let chain = tree_chain(h, q).unwrap();
        let expected: f64 = (0..h).map(|i| (1.0 - q).powi(i as i32)).sum();
        assert!((chain.expected_hops().unwrap() - expected).abs() < 1e-12);
    }
}
