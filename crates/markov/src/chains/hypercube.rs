//! The hypercube (CAN) routing chain of Fig. 4(b).

use super::{validate_params, RoutingChain};
use crate::chain::{ChainBuilder, ChainError};

/// Builds the hypercube-routing chain for a target `h` hops away under
/// failure probability `q`.
///
/// State `S_i` corresponds to `i` corrected bits; `h − i` neighbours can each
/// correct one of the remaining bits, so the hop fails only if all of them are
/// down: the transition to `F` has probability `q^{h−i}` and the advance has
/// probability `1 − q^{h−i}` (§3.2, §4.2 of the paper). The success
/// probability is `p(h, q) = ∏_{m=1}^{h} (1 − q^m)` (Eq. 2).
///
/// # Errors
///
/// Returns [`ChainError::InvalidParameter`] if `h == 0` or `q ∉ [0, 1]`.
///
/// # Example
///
/// ```rust
/// use dht_markov::chains::hypercube_chain;
///
/// // The worked example of Fig. 3: an 8-node hypercube (d = 3), routing from
/// // 011 to 100 at Hamming distance 3.
/// let chain = hypercube_chain(3, 0.2)?;
/// let expected = (1.0 - 0.2f64) * (1.0 - 0.04) * (1.0 - 0.008);
/// assert!((chain.success_probability()? - expected).abs() < 1e-12);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
pub fn hypercube_chain(h: u32, q: f64) -> Result<RoutingChain, ChainError> {
    validate_params(h, q)?;
    let mut builder = ChainBuilder::new();
    let failure = builder.add_state("F");
    let states: Vec<_> = (0..=h)
        .map(|i| builder.add_state(format!("S{i}")))
        .collect();
    for i in 0..h {
        // h - i neighbours remain that can correct one of the h - i wrong bits.
        let all_down = q.powi((h - i) as i32);
        builder.add_transition(states[i as usize], states[i as usize + 1], 1.0 - all_down)?;
        builder.add_transition(states[i as usize], failure, all_down)?;
    }
    let chain = builder.build()?;
    Ok(RoutingChain::new(
        chain,
        states[0],
        states[h as usize],
        failure,
        h,
        q,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn closed_form(h: u32, q: f64) -> f64 {
        (1..=h).map(|m| 1.0 - q.powi(m as i32)).product()
    }

    #[test]
    fn matches_equation_two() {
        for h in 1..=20u32 {
            for &q in &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
                let chain = hypercube_chain(h, q).unwrap();
                assert!(
                    (chain.success_probability().unwrap() - closed_form(h, q)).abs() < 1e-12,
                    "h={h} q={q}"
                );
            }
        }
    }

    #[test]
    fn figure_three_example_table() {
        // Fig. 3: p(3, q) = (1 − q^3)(1 − q^2)(1 − q).
        let q = 0.5;
        let chain = hypercube_chain(3, q).unwrap();
        let expected = (1.0 - q.powi(3)) * (1.0 - q.powi(2)) * (1.0 - q);
        assert!((chain.success_probability().unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn dominates_tree_chain() {
        // Redundant next-hop choices can only help: hypercube success is at
        // least tree success for every h and q.
        for h in 1..=12u32 {
            for &q in &[0.1, 0.4, 0.8] {
                let cube = hypercube_chain(h, q)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                let tree = super::super::tree_chain(h, q)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                assert!(cube >= tree - 1e-12, "h={h} q={q}");
            }
        }
    }

    #[test]
    fn first_hop_failure_dominates_for_long_routes() {
        // As h grows with fixed q the success probability approaches the
        // infinite product ∏ (1 - q^m) > 0, so it must stay above (1-q) * C
        // for some positive constant; sanity-check the limit is not zero.
        let q = 0.5;
        let p64 = hypercube_chain(64, q)
            .unwrap()
            .success_probability()
            .unwrap();
        let p32 = hypercube_chain(32, q)
            .unwrap()
            .success_probability()
            .unwrap();
        assert!(p64 > 0.25);
        assert!((p64 - p32).abs() < 1e-9);
    }
}
