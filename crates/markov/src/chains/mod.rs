//! Builders for the five routing Markov chains of the paper.
//!
//! Each builder constructs the chain that models routing to a target `h` hops
//! (or phases) away from the root node under node-failure probability `q`:
//!
//! * [`tree_chain`] — Fig. 4(a), the Plaxton/tree geometry.
//! * [`hypercube_chain`] — Fig. 4(b), the CAN/hypercube geometry.
//! * [`xor_chain`] — Fig. 5(b), the Kademlia/XOR geometry.
//! * [`ring_chain`] — Fig. 8(a), the Chord/ring geometry (the paper's
//!   simplified chain, i.e. the lower-bound model).
//! * [`symphony_chain`] — Fig. 8(b), the Symphony/small-world geometry.
//!
//! Every chain has a designated start state `S0`, success state `S_h` and
//! failure state `F`; [`RoutingChain::success_probability`] evaluates
//! `p(h, q)` numerically, which the `dht-rcm-core` crate compares against its
//! closed-form expressions.

mod hypercube;
mod ring;
mod symphony;
mod tree;
mod xor;

pub use hypercube::hypercube_chain;
pub use ring::ring_chain;
pub use symphony::symphony_chain;
pub use tree::tree_chain;
pub use xor::xor_chain;

use crate::chain::{ChainError, MarkovChain, StateId};
use crate::solver;

/// Number of explicit suboptimal-hop states kept per phase.
///
/// The ring chain has up to `2^{m-1}` suboptimal states in phase `m` and the
/// Symphony chain up to `⌈d/(1-q)⌉`; beyond a few thousand states the
/// remaining geometric tail is smaller than `1e-18` and is folded into the
/// phase-advance transition, keeping chains tractable without measurable
/// error.
pub(crate) const MAX_SUBOPTIMAL_STATES: u64 = 4096;

/// A routing Markov chain together with its distinguished states.
///
/// # Example
///
/// ```rust
/// use dht_markov::chains::tree_chain;
///
/// let chain = tree_chain(4, 0.25)?;
/// // Tree routing succeeds only if all four hops survive: (1-q)^4.
/// assert!((chain.success_probability()? - 0.31640625).abs() < 1e-12);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutingChain {
    chain: MarkovChain,
    start: StateId,
    success: StateId,
    failure: StateId,
    hops: u32,
    failure_probability: f64,
}

impl RoutingChain {
    pub(crate) fn new(
        chain: MarkovChain,
        start: StateId,
        success: StateId,
        failure: StateId,
        hops: u32,
        failure_probability: f64,
    ) -> Self {
        RoutingChain {
            chain,
            start,
            success,
            failure,
            hops,
            failure_probability,
        }
    }

    /// The underlying Markov chain.
    #[must_use]
    pub fn markov(&self) -> &MarkovChain {
        &self.chain
    }

    /// The initial state `S0`.
    #[must_use]
    pub fn start(&self) -> StateId {
        self.start
    }

    /// The success state `S_h`.
    #[must_use]
    pub fn success(&self) -> StateId {
        self.success
    }

    /// The failure state `F`.
    #[must_use]
    pub fn failure(&self) -> StateId {
        self.failure
    }

    /// The target distance `h` (hops or phases) the chain models.
    #[must_use]
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// The node-failure probability `q` the chain was built for.
    #[must_use]
    pub fn failure_probability(&self) -> f64 {
        self.failure_probability
    }

    /// Evaluates `p(h, q)`: the probability of being absorbed in the success
    /// state when starting from `S0`.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`] from the solver; well-formed chains produced
    /// by the builders in this module never fail.
    pub fn success_probability(&self) -> Result<f64, ChainError> {
        solver::absorption_probability(&self.chain, self.start, self.success)
    }

    /// Evaluates the probability of being absorbed in the failure state.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`] from the solver.
    pub fn drop_probability(&self) -> Result<f64, ChainError> {
        solver::absorption_probability(&self.chain, self.start, self.failure)
    }

    /// Expected number of chain steps (hops, including suboptimal detours)
    /// before the message is delivered or dropped.
    ///
    /// # Errors
    ///
    /// Propagates [`ChainError`] from the solver.
    pub fn expected_hops(&self) -> Result<f64, ChainError> {
        solver::expected_steps(&self.chain, self.start)
    }
}

/// Validates the `(h, q)` parameters shared by all chain builders.
pub(crate) fn validate_params(h: u32, q: f64) -> Result<(), ChainError> {
    if h == 0 {
        return Err(ChainError::InvalidParameter {
            message: "target distance h must be at least 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return Err(ChainError::InvalidParameter {
            message: format!("failure probability q must lie in [0, 1], got {q}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_and_drop_probabilities_sum_to_one() {
        for &q in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            for h in 1..=6u32 {
                let mut chains: Vec<RoutingChain> = vec![
                    tree_chain(h, q).unwrap(),
                    hypercube_chain(h, q).unwrap(),
                    xor_chain(h, q).unwrap(),
                    ring_chain(h, q).unwrap(),
                ];
                if q < 1.0 {
                    // Symphony rejects q = 1 (its drop probability would push
                    // the per-state transition mass above one).
                    chains.push(symphony_chain(h, q, 1, 1, 16).unwrap());
                }
                for chain in chains {
                    let ok = chain.success_probability().unwrap();
                    let drop = chain.drop_probability().unwrap();
                    assert!(
                        (ok + drop - 1.0).abs() < 1e-9,
                        "h={h} q={q}: {ok} + {drop} != 1"
                    );
                    assert!((0.0..=1.0 + 1e-12).contains(&ok));
                }
            }
        }
    }

    #[test]
    fn no_failures_means_certain_delivery() {
        for h in 1..=8u32 {
            assert!(
                (tree_chain(h, 0.0).unwrap().success_probability().unwrap() - 1.0).abs() < 1e-12
            );
            assert!(
                (hypercube_chain(h, 0.0)
                    .unwrap()
                    .success_probability()
                    .unwrap()
                    - 1.0)
                    .abs()
                    < 1e-12
            );
            assert!(
                (xor_chain(h, 0.0).unwrap().success_probability().unwrap() - 1.0).abs() < 1e-12
            );
            assert!(
                (ring_chain(h, 0.0).unwrap().success_probability().unwrap() - 1.0).abs() < 1e-12
            );
        }
    }

    #[test]
    fn certain_failure_means_certain_drop() {
        for h in 1..=5u32 {
            assert!(tree_chain(h, 1.0).unwrap().success_probability().unwrap() < 1e-12);
            assert!(
                hypercube_chain(h, 1.0)
                    .unwrap()
                    .success_probability()
                    .unwrap()
                    < 1e-12
            );
            assert!(xor_chain(h, 1.0).unwrap().success_probability().unwrap() < 1e-12);
            assert!(ring_chain(h, 1.0).unwrap().success_probability().unwrap() < 1e-12);
        }
    }

    #[test]
    fn success_probability_decreases_with_distance() {
        let q = 0.3;
        let mut previous = 1.0;
        for h in 1..=10u32 {
            let p = xor_chain(h, q).unwrap().success_probability().unwrap();
            assert!(p <= previous + 1e-12, "h={h}");
            previous = p;
        }
    }

    #[test]
    fn expected_hops_at_least_distance_when_reliable() {
        for h in 1..=6u32 {
            let chain = hypercube_chain(h, 0.0).unwrap();
            assert!((chain.expected_hops().unwrap() - f64::from(h)).abs() < 1e-12);
        }
    }

    #[test]
    fn accessors_report_parameters() {
        let chain = ring_chain(5, 0.25).unwrap();
        assert_eq!(chain.hops(), 5);
        assert_eq!(chain.failure_probability(), 0.25);
        assert!(chain.markov().len() > 5);
        assert!(chain.markov().is_absorbing(chain.success()));
        assert!(chain.markov().is_absorbing(chain.failure()));
        assert!(!chain.markov().is_absorbing(chain.start()));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(tree_chain(0, 0.5).is_err());
        assert!(tree_chain(3, -0.1).is_err());
        assert!(tree_chain(3, 1.5).is_err());
        assert!(hypercube_chain(3, f64::NAN).is_err());
    }
}
