//! The ring (Chord) routing chain of Fig. 8(a).

use super::{validate_params, RoutingChain, MAX_SUBOPTIMAL_STATES};
use crate::chain::{ChainBuilder, ChainError};

/// Builds the ring-routing chain for a target `h` phases away under failure
/// probability `q`.
///
/// This is the paper's *simplified* Chord model (§4.3.3): progress made by
/// suboptimal hops is not carried over to later phases, so the resulting
/// success probability is a **lower bound** on real Chord routing (and the
/// derived failed-path percentage an upper bound, cf. Fig. 6(b)).
///
/// With `m = h − i` phases remaining the transitions out of every state of
/// phase `i` are:
///
/// * advance with probability `1 − q` (the optimal finger is alive);
/// * drop with probability `q^m` (all `m` useful fingers are dead — unlike
///   XOR, the number of choices does not shrink with suboptimal hops);
/// * take a suboptimal hop with probability `q(1 − q^{m−1})`, up to
///   `2^{m−1} − 1` times.
///
/// The chain realises the closed form
/// `Q_ring(m) = q^m · Σ_{k=0}^{2^{m−1}−1} [q(1 − q^{m−1})]^k`.
///
/// Phases with more than a few thousand suboptimal states are truncated (the
/// geometric tail beyond that point is below `1e-18`); the truncated mass is
/// folded into the advance transition exactly as the paper folds it for the
/// final suboptimal state.
///
/// # Errors
///
/// Returns [`ChainError::InvalidParameter`] if `h == 0` or `q ∉ [0, 1]`.
///
/// # Example
///
/// ```rust
/// use dht_markov::chains::{ring_chain, xor_chain};
///
/// // §5.4: ring routing dominates XOR routing for the same h and q.
/// let ring = ring_chain(10, 0.4)?.success_probability()?;
/// let xor = xor_chain(10, 0.4)?.success_probability()?;
/// assert!(ring >= xor);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
pub fn ring_chain(h: u32, q: f64) -> Result<RoutingChain, ChainError> {
    validate_params(h, q)?;
    let mut builder = ChainBuilder::new();
    let failure = builder.add_state("F");
    let phase_entry: Vec<_> = (0..=h)
        .map(|i| builder.add_state(format!("S{i}")))
        .collect();
    let success = phase_entry[h as usize];

    for i in 0..h {
        let m = h - i;
        let next_phase = phase_entry[(i + 1) as usize];
        let drop = q.powi(m as i32);
        let advance = 1.0 - q;
        let suboptimal = q * (1.0 - q.powi((m - 1) as i32));
        // Number of suboptimal states in this phase: 2^{m-1} total positions
        // including the entry state, truncated for tractability.
        let total_positions: u64 = if m > 63 {
            MAX_SUBOPTIMAL_STATES
        } else {
            (1u64 << (m - 1)).min(MAX_SUBOPTIMAL_STATES)
        };
        let mut current = phase_entry[i as usize];
        for position in 0..total_positions {
            let is_last = position + 1 == total_positions;
            if is_last || suboptimal == 0.0 {
                // The final position has nowhere left to detour: the paper's
                // geometric sum simply stops here, so the residual detour mass
                // re-joins the advance transition.
                builder.add_transition(current, next_phase, advance + suboptimal)?;
                builder.add_transition(current, failure, drop)?;
                break;
            }
            builder.add_transition(current, next_phase, advance)?;
            builder.add_transition(current, failure, drop)?;
            let next_sub = builder.add_state(format!("({i},{})", position + 1));
            builder.add_transition(current, next_sub, suboptimal)?;
            current = next_sub;
        }
    }

    let chain = builder.build()?;
    Ok(RoutingChain::new(
        chain,
        phase_entry[0],
        success,
        failure,
        h,
        q,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed form of §4.3.3: Q_ring(m) = q^m (1 − [q(1−q^{m−1})]^{2^{m−1}}) / (1 − q(1−q^{m−1})).
    fn q_ring(m: u32, q: f64) -> f64 {
        if q == 0.0 {
            return 0.0;
        }
        let r = q * (1.0 - q.powi((m - 1) as i32));
        let exponent = if m > 63 {
            f64::INFINITY
        } else {
            (1u64 << (m - 1)) as f64
        };
        let tail = if r == 0.0 { 0.0 } else { r.powf(exponent) };
        if (1.0 - r).abs() < 1e-15 {
            // r == 1 cannot occur for q in [0,1] but guard the division anyway.
            return q.powi(m as i32) * exponent;
        }
        q.powi(m as i32) * (1.0 - tail) / (1.0 - r)
    }

    fn closed_form(h: u32, q: f64) -> f64 {
        (1..=h).map(|m| (1.0 - q_ring(m, q)).max(0.0)).product()
    }

    #[test]
    fn matches_section_4_3_3_closed_form() {
        for h in 1..=14u32 {
            for &q in &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
                let chain = ring_chain(h, q).unwrap();
                let got = chain.success_probability().unwrap();
                let want = closed_form(h, q);
                assert!(
                    (got - want).abs() < 1e-9,
                    "h={h} q={q}: chain {got} vs closed form {want}"
                );
            }
        }
    }

    #[test]
    fn single_phase_reduces_to_tree() {
        for &q in &[0.2, 0.6, 0.95] {
            let chain = ring_chain(1, q).unwrap();
            assert!((chain.success_probability().unwrap() - (1.0 - q)).abs() < 1e-12);
        }
    }

    #[test]
    fn dominates_xor_chain() {
        // §5.4 argues ring ≥ XOR because detours keep all m choices available.
        for h in 2..=12u32 {
            for &q in &[0.1, 0.4, 0.7, 0.9] {
                let ring = ring_chain(h, q).unwrap().success_probability().unwrap();
                let xor = super::super::xor_chain(h, q)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                assert!(ring >= xor - 1e-10, "h={h} q={q}: {ring} < {xor}");
            }
        }
    }

    #[test]
    fn truncation_is_invisible_for_large_h() {
        // h = 20 triggers the MAX_SUBOPTIMAL_STATES truncation in early phases;
        // the result must still match the untruncated closed form.
        let q = 0.5;
        let chain = ring_chain(20, q).unwrap();
        let got = chain.success_probability().unwrap();
        let want = closed_form(20, q);
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn expected_hops_exceed_phase_count_under_failure() {
        // Detours cost hops: with failures the expected hop count exceeds h
        // times the per-phase minimum of one hop.
        let chain = ring_chain(8, 0.5).unwrap();
        let hops = chain.expected_hops().unwrap();
        assert!(hops > 4.0, "expected more than 4 hops, got {hops}");
    }
}
