//! The XOR (Kademlia) routing chain of Fig. 5(b).

use super::{validate_params, RoutingChain};
use crate::chain::{ChainBuilder, ChainError};

/// Builds the XOR-routing chain for a target `h` phases away under failure
/// probability `q`.
///
/// The chain tracks `(i, j)`: `i` phases advanced (ordered bits corrected) and
/// `j` suboptimal hops taken inside the current phase. With `m = h − i` phases
/// remaining and `j` lower-order bits already burned:
///
/// * the optimal neighbour is alive with probability `1 − q` → advance to
///   phase `i + 1`;
/// * all `m − j` useful neighbours are dead with probability `q^{m−j}` → the
///   message is dropped;
/// * otherwise (probability `q(1 − q^{m−j−1})`) a lower-order bit is corrected,
///   moving to `(i, j+1)`. Progress made this way is *not* preserved across
///   phases, which is the defining difference from ring routing (§3.3).
///
/// The induced per-phase failure probability matches Eq. 6 of the paper.
///
/// # Errors
///
/// Returns [`ChainError::InvalidParameter`] if `h == 0` or `q ∉ [0, 1]`.
///
/// # Example
///
/// ```rust
/// use dht_markov::chains::{tree_chain, xor_chain};
///
/// // Fallback routes make XOR strictly more robust than the tree geometry.
/// let xor = xor_chain(8, 0.3)?.success_probability()?;
/// let tree = tree_chain(8, 0.3)?.success_probability()?;
/// assert!(xor > tree);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
pub fn xor_chain(h: u32, q: f64) -> Result<RoutingChain, ChainError> {
    validate_params(h, q)?;
    let mut builder = ChainBuilder::new();
    let failure = builder.add_state("F");
    // phase_entry[i] is the state with i phases advanced and no suboptimal
    // hops taken; phase_entry[h] is the success state.
    let phase_entry: Vec<_> = (0..=h)
        .map(|i| builder.add_state(format!("S{i}")))
        .collect();
    let success = phase_entry[h as usize];

    for i in 0..h {
        let m = h - i; // phases remaining
        let next_phase = phase_entry[(i + 1) as usize];
        // Suboptimal states (i, 1), (i, 2), ..., (i, m-1); (i, 0) is the entry.
        let mut current = phase_entry[i as usize];
        for j in 0..m {
            let useful_left = m - j;
            let drop = q.powi(useful_left as i32);
            let advance = 1.0 - q;
            let suboptimal = if useful_left >= 2 {
                q * (1.0 - q.powi((useful_left - 1) as i32))
            } else {
                0.0
            };
            builder.add_transition(current, next_phase, advance)?;
            builder.add_transition(current, failure, drop)?;
            if suboptimal > 0.0 && j + 1 < m {
                let next_sub = builder.add_state(format!("({i},{})", j + 1));
                builder.add_transition(current, next_sub, suboptimal)?;
                current = next_sub;
            } else {
                break;
            }
        }
    }

    let chain = builder.build()?;
    Ok(RoutingChain::new(
        chain,
        phase_entry[0],
        success,
        failure,
        h,
        q,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct evaluation of Eq. 6: Q_xor(m) = q^m + Σ_{k=1}^{m−1} q^m ∏_{j=m−k}^{m−1} (1 − q^j).
    fn q_xor(m: u32, q: f64) -> f64 {
        let mut total = q.powi(m as i32);
        for k in 1..m {
            let mut product = 1.0;
            for j in (m - k)..=(m - 1) {
                product *= 1.0 - q.powi(j as i32);
            }
            total += q.powi(m as i32) * product;
        }
        total
    }

    fn closed_form(h: u32, q: f64) -> f64 {
        (1..=h).map(|m| 1.0 - q_xor(m, q)).product()
    }

    #[test]
    fn matches_equation_six_product() {
        for h in 1..=16u32 {
            for &q in &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9] {
                let chain = xor_chain(h, q).unwrap();
                let got = chain.success_probability().unwrap();
                let want = closed_form(h, q);
                assert!((got - want).abs() < 1e-10, "h={h} q={q}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn single_phase_reduces_to_tree() {
        // With one phase there is a single useful neighbour, exactly the tree case.
        for &q in &[0.2, 0.6, 0.95] {
            let chain = xor_chain(1, q).unwrap();
            assert!((chain.success_probability().unwrap() - (1.0 - q)).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_between_tree_and_hypercube() {
        // Suboptimal hops help over the tree but progress is not preserved, so
        // XOR can never beat the hypercube where any correction order works.
        for h in 2..=12u32 {
            for &q in &[0.1, 0.4, 0.7] {
                let xor = xor_chain(h, q).unwrap().success_probability().unwrap();
                let tree = super::super::tree_chain(h, q)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                let cube = super::super::hypercube_chain(h, q)
                    .unwrap()
                    .success_probability()
                    .unwrap();
                assert!(xor >= tree - 1e-12, "h={h} q={q}");
                assert!(xor <= cube + 1e-12, "h={h} q={q}");
            }
        }
    }

    #[test]
    fn state_count_is_quadratic_in_h() {
        let chain = xor_chain(10, 0.5).unwrap();
        // 1 failure + (h+1) phase entries + Σ_{m=2}^{h} (m-1) suboptimal states.
        let expected = 1 + 11 + (1..10).sum::<usize>();
        assert_eq!(chain.markov().len(), expected);
    }

    #[test]
    fn q_xor_is_a_probability() {
        for m in 1..=20u32 {
            for &q in &[0.0, 0.25, 0.5, 0.75, 1.0] {
                let value = q_xor(m, q);
                assert!((0.0..=1.0 + 1e-12).contains(&value), "m={m} q={q}: {value}");
            }
        }
    }
}
