//! Generic absorbing discrete-time Markov chains.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a state within a [`MarkovChain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// Returns the underlying index of the state.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Errors raised while building or analysing a chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChainError {
    /// A referenced state does not exist in the chain.
    UnknownState {
        /// The offending state index.
        state: usize,
    },
    /// A transition probability was negative, NaN, or greater than one.
    InvalidProbability {
        /// Source state of the transition.
        from: usize,
        /// The offending probability.
        probability: f64,
    },
    /// The outgoing probabilities of a transient state do not sum to one.
    UnnormalisedState {
        /// The offending state index.
        state: usize,
        /// The observed sum of outgoing probabilities.
        sum: f64,
    },
    /// Absorption analysis requires an acyclic (feed-forward) chain but a
    /// cycle was found.
    CycleDetected {
        /// A state participating in the cycle.
        state: usize,
    },
    /// The requested target state is not absorbing.
    NotAbsorbing {
        /// The offending state index.
        state: usize,
    },
    /// A chain parameter was out of range (e.g. a failure probability outside
    /// `[0, 1]` or a zero hop count).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownState { state } => write!(f, "unknown state index {state}"),
            ChainError::InvalidProbability { from, probability } => write!(
                f,
                "invalid transition probability {probability} out of state {from}"
            ),
            ChainError::UnnormalisedState { state, sum } => write!(
                f,
                "outgoing probabilities of state {state} sum to {sum}, expected 1"
            ),
            ChainError::CycleDetected { state } => {
                write!(f, "chain contains a cycle through state {state}")
            }
            ChainError::NotAbsorbing { state } => {
                write!(f, "state {state} is not absorbing")
            }
            ChainError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A single state and its outgoing transitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct State {
    label: String,
    transitions: Vec<(usize, f64)>,
}

/// An absorbing discrete-time Markov chain with sparse transitions.
///
/// States with no outgoing transitions are absorbing. The chain is validated
/// on construction: probabilities lie in `[0, 1]` and the outgoing mass of
/// every transient state sums to one (within `1e-9`).
///
/// # Example
///
/// ```rust
/// use dht_markov::ChainBuilder;
///
/// let mut b = ChainBuilder::new();
/// let start = b.add_state("start");
/// let done = b.add_state("done");
/// let fail = b.add_state("fail");
/// b.add_transition(start, done, 0.7)?;
/// b.add_transition(start, fail, 0.3)?;
/// let chain = b.build()?;
/// assert_eq!(chain.len(), 3);
/// assert!(chain.is_absorbing(done));
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovChain {
    states: Vec<State>,
}

impl MarkovChain {
    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` if the chain has no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns `true` if the state has no outgoing transitions.
    ///
    /// # Panics
    ///
    /// Panics if the state does not belong to this chain.
    #[must_use]
    pub fn is_absorbing(&self, state: StateId) -> bool {
        self.states[state.0].transitions.is_empty()
    }

    /// Human-readable label of the state.
    ///
    /// # Panics
    ///
    /// Panics if the state does not belong to this chain.
    #[must_use]
    pub fn label(&self, state: StateId) -> &str {
        &self.states[state.0].label
    }

    /// Outgoing transitions of a state as `(target, probability)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the state does not belong to this chain.
    #[must_use]
    pub fn transitions(&self, state: StateId) -> &[(usize, f64)] {
        &self.states[state.0].transitions
    }

    /// Iterates over all state identifiers.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId)
    }

    /// All absorbing states of the chain.
    #[must_use]
    pub fn absorbing_states(&self) -> Vec<StateId> {
        self.state_ids().filter(|&s| self.is_absorbing(s)).collect()
    }

    /// Total number of transitions in the chain.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }
}

/// Incremental builder for [`MarkovChain`].
#[derive(Debug, Clone, Default)]
pub struct ChainBuilder {
    states: Vec<State>,
}

impl ChainBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        ChainBuilder::default()
    }

    /// Adds a state with a descriptive label and returns its identifier.
    pub fn add_state(&mut self, label: impl Into<String>) -> StateId {
        self.states.push(State {
            label: label.into(),
            transitions: Vec::new(),
        });
        StateId(self.states.len() - 1)
    }

    /// Adds a transition `from → to` with the given probability.
    ///
    /// Zero-probability transitions are silently dropped so builders can pass
    /// analytic expressions that vanish at the boundary (`q = 0` or `q = 1`)
    /// without special-casing.
    ///
    /// # Errors
    ///
    /// Returns an error if either state is unknown or the probability is not
    /// in `[0, 1]`.
    pub fn add_transition(
        &mut self,
        from: StateId,
        to: StateId,
        probability: f64,
    ) -> Result<(), ChainError> {
        if from.0 >= self.states.len() {
            return Err(ChainError::UnknownState { state: from.0 });
        }
        if to.0 >= self.states.len() {
            return Err(ChainError::UnknownState { state: to.0 });
        }
        if !(0.0..=1.0 + 1e-12).contains(&probability) || probability.is_nan() {
            return Err(ChainError::InvalidProbability {
                from: from.0,
                probability,
            });
        }
        if probability > 0.0 {
            self.states[from.0]
                .transitions
                .push((to.0, probability.min(1.0)));
        }
        Ok(())
    }

    /// Validates and finalises the chain.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::UnnormalisedState`] if a transient state's
    /// outgoing probabilities do not sum to one within `1e-9`.
    pub fn build(self) -> Result<MarkovChain, ChainError> {
        for (index, state) in self.states.iter().enumerate() {
            if state.transitions.is_empty() {
                continue;
            }
            let sum: f64 = state.transitions.iter().map(|&(_, p)| p).sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(ChainError::UnnormalisedState { state: index, sum });
            }
        }
        Ok(MarkovChain {
            states: self.states,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_chain() {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let ok = b.add_state("ok");
        let fail = b.add_state("F");
        b.add_transition(s0, ok, 0.25).unwrap();
        b.add_transition(s0, fail, 0.75).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.transition_count(), 2);
        assert!(!chain.is_absorbing(s0));
        assert!(chain.is_absorbing(ok));
        assert_eq!(chain.label(fail), "F");
        assert_eq!(chain.absorbing_states(), vec![ok, fail]);
    }

    #[test]
    fn zero_probability_transitions_are_dropped() {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let s1 = b.add_state("S1");
        b.add_transition(s0, s1, 0.0).unwrap();
        b.add_transition(s0, s1, 1.0).unwrap();
        let chain = b.build().unwrap();
        assert_eq!(chain.transitions(s0).len(), 1);
    }

    #[test]
    fn rejects_unknown_states() {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let bogus = StateId(42);
        assert_eq!(
            b.add_transition(s0, bogus, 0.5),
            Err(ChainError::UnknownState { state: 42 })
        );
        assert_eq!(
            b.add_transition(bogus, s0, 0.5),
            Err(ChainError::UnknownState { state: 42 })
        );
    }

    #[test]
    fn rejects_invalid_probability() {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let s1 = b.add_state("S1");
        assert!(matches!(
            b.add_transition(s0, s1, 1.5),
            Err(ChainError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_transition(s0, s1, -0.1),
            Err(ChainError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_transition(s0, s1, f64::NAN),
            Err(ChainError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn rejects_unnormalised_state() {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let s1 = b.add_state("S1");
        b.add_transition(s0, s1, 0.4).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            ChainError::UnnormalisedState { state: 0, .. }
        ));
    }

    #[test]
    fn accepts_tiny_rounding_noise() {
        let mut b = ChainBuilder::new();
        let s0 = b.add_state("S0");
        let s1 = b.add_state("S1");
        let s2 = b.add_state("S2");
        b.add_transition(s0, s1, 1.0 / 3.0).unwrap();
        b.add_transition(s0, s2, 2.0 / 3.0).unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn error_display_is_descriptive() {
        let err = ChainError::UnnormalisedState { state: 3, sum: 0.7 };
        assert!(err.to_string().contains("state 3"));
        let err = ChainError::InvalidParameter {
            message: "q out of range".into(),
        };
        assert!(err.to_string().contains("q out of range"));
    }

    #[test]
    fn state_id_display() {
        assert_eq!(StateId(5).to_string(), "s5");
        assert_eq!(StateId(5).index(), 5);
    }
}
