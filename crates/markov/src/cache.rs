//! Memoized routing-chain solves for the serving layer.
//!
//! Solving a routing chain is cheap for one `(h, q)` point but the report
//! server answers *streams* of queries, each of which sums chain solutions
//! over every hop distance of a geometry. [`ChainCache`] memoizes
//! [`RoutingChain::success_probability`](crate::RoutingChain::success_probability)
//! by `(family, h, q)` — with `q` keyed by its exact bit pattern so distinct
//! floats never collide — and exposes hit/solve counters so callers can
//! assert that repeated queries trigger **no new solves**.
//!
//! The cache serialises through [`ChainCacheEntry`] rows (sorted, so the
//! serialised form is deterministic), which lets a long-running server
//! persist warm solves across restarts.

use crate::chain::ChainError;
use crate::chains::{hypercube_chain, ring_chain, tree_chain, xor_chain};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The four chain families with parameter-free models (Symphony's chain
/// needs `(k_n, k_s)` and its own distance model, so it is not cacheable by
/// `(family, h, q)` alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ChainFamily {
    /// Chord's ring chain (Fig. 8).
    Ring,
    /// Kademlia's XOR chain (Fig. 5(b)).
    Xor,
    /// Plaxton's tree chain.
    Tree,
    /// CAN's hypercube chain (Fig. 4).
    Hypercube,
}

impl ChainFamily {
    /// The geometry name this family models (matches
    /// `dht_rcm_core::Geometry::name`).
    #[must_use]
    pub fn geometry_name(self) -> &'static str {
        match self {
            ChainFamily::Ring => "ring",
            ChainFamily::Xor => "xor",
            ChainFamily::Tree => "tree",
            ChainFamily::Hypercube => "hypercube",
        }
    }

    /// Parses a geometry name into its chain family, if one exists.
    #[must_use]
    pub fn from_geometry_name(name: &str) -> Option<Self> {
        match name {
            "ring" => Some(ChainFamily::Ring),
            "xor" => Some(ChainFamily::Xor),
            "tree" => Some(ChainFamily::Tree),
            "hypercube" => Some(ChainFamily::Hypercube),
            _ => None,
        }
    }

    fn solve(self, h: u32, q: f64) -> Result<f64, ChainError> {
        let chain = match self {
            ChainFamily::Ring => ring_chain(h, q)?,
            ChainFamily::Xor => xor_chain(h, q)?,
            ChainFamily::Tree => tree_chain(h, q)?,
            ChainFamily::Hypercube => hypercube_chain(h, q)?,
        };
        chain.success_probability()
    }
}

/// One persisted cache row: a solved `(family, h, q)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainCacheEntry {
    /// Chain family of the solve.
    pub family: ChainFamily,
    /// Hop distance `h`.
    pub hops: u32,
    /// Exact bit pattern of the failure probability `q`.
    pub q_bits: u64,
    /// The solved absorption-at-success probability.
    pub success_probability: f64,
}

/// A memoizing solver for the parameter-free routing chains.
///
/// # Example
///
/// ```rust
/// use dht_markov::cache::{ChainCache, ChainFamily};
///
/// let mut cache = ChainCache::new();
/// let first = cache.success_probability(ChainFamily::Hypercube, 3, 0.5)?;
/// let second = cache.success_probability(ChainFamily::Hypercube, 3, 0.5)?;
/// assert_eq!(first.to_bits(), second.to_bits());
/// assert_eq!(cache.solves(), 1);
/// assert_eq!(cache.hits(), 1);
/// # Ok::<(), dht_markov::ChainError>(())
/// ```
#[derive(Debug, Default)]
pub struct ChainCache {
    solved: HashMap<(ChainFamily, u32, u64), f64>,
    hits: u64,
    solves: u64,
}

impl ChainCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        ChainCache::default()
    }

    /// The chain success probability for `(family, h, q)`, solved on first
    /// use and served from the cache afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] if the underlying chain cannot be built or
    /// solved (e.g. `h = 0` or `q` outside `[0, 1]`). Failed solves are not
    /// cached.
    pub fn success_probability(
        &mut self,
        family: ChainFamily,
        h: u32,
        q: f64,
    ) -> Result<f64, ChainError> {
        let key = (family, h, q.to_bits());
        if let Some(&probability) = self.solved.get(&key) {
            self.hits += 1;
            return Ok(probability);
        }
        let probability = family.solve(h, q)?;
        self.solves += 1;
        self.solved.insert(key, probability);
        Ok(probability)
    }

    /// Number of solves served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of fresh chain builds + solves performed.
    #[must_use]
    pub fn solves(&self) -> u64 {
        self.solves
    }

    /// Number of distinct `(family, h, q)` points held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.solved.len()
    }

    /// Whether the cache holds no solves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.solved.is_empty()
    }

    /// The cache content as sorted, serialisable rows (deterministic order).
    #[must_use]
    pub fn to_entries(&self) -> Vec<ChainCacheEntry> {
        let mut entries: Vec<ChainCacheEntry> = self
            .solved
            .iter()
            .map(
                |(&(family, hops, q_bits), &success_probability)| ChainCacheEntry {
                    family,
                    hops,
                    q_bits,
                    success_probability,
                },
            )
            .collect();
        entries.sort_by_key(|entry| (entry.family, entry.hops, entry.q_bits));
        entries
    }

    /// Rebuilds a warm cache from persisted rows (counters start at zero).
    #[must_use]
    pub fn from_entries(entries: &[ChainCacheEntry]) -> Self {
        let mut cache = ChainCache::new();
        for entry in entries {
            cache.solved.insert(
                (entry.family, entry.hops, entry.q_bits),
                entry.success_probability,
            );
        }
        cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_solve_matches_a_direct_solve_exactly() {
        let mut cache = ChainCache::new();
        for family in [
            ChainFamily::Ring,
            ChainFamily::Xor,
            ChainFamily::Tree,
            ChainFamily::Hypercube,
        ] {
            let cached = cache.success_probability(family, 4, 0.3).unwrap();
            let direct = family.solve(4, 0.3).unwrap();
            assert_eq!(cached.to_bits(), direct.to_bits(), "{family:?}");
        }
        assert_eq!(cache.solves(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn repeats_hit_and_distinct_q_bits_do_not_collide() {
        let mut cache = ChainCache::new();
        let a = cache
            .success_probability(ChainFamily::Ring, 3, 0.2)
            .unwrap();
        let b = cache
            .success_probability(ChainFamily::Ring, 3, 0.2 + f64::EPSILON)
            .unwrap();
        assert_eq!(cache.solves(), 2, "distinct bit patterns are distinct keys");
        let again = cache
            .success_probability(ChainFamily::Ring, 3, 0.2)
            .unwrap();
        assert_eq!(a.to_bits(), again.to_bits());
        assert_eq!(cache.hits(), 1);
        // Not asserting a != b: the chains are continuous, the *keys* matter.
        let _ = b;
    }

    #[test]
    fn failed_solves_are_not_cached() {
        let mut cache = ChainCache::new();
        assert!(cache.success_probability(ChainFamily::Xor, 0, 0.5).is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.solves(), 0);
    }

    #[test]
    fn entries_round_trip_through_serde_and_rewarm_the_cache() {
        let mut cache = ChainCache::new();
        for h in 1..=5 {
            cache
                .success_probability(ChainFamily::Hypercube, h, 0.4)
                .unwrap();
            cache
                .success_probability(ChainFamily::Ring, h, 0.1)
                .unwrap();
        }
        let entries = cache.to_entries();
        assert_eq!(entries.len(), 10);
        let json = serde_json::to_string(&entries).unwrap();
        let back: Vec<ChainCacheEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, entries);

        let mut warm = ChainCache::from_entries(&back);
        let p = warm
            .success_probability(ChainFamily::Hypercube, 3, 0.4)
            .unwrap();
        assert_eq!(warm.solves(), 0, "warm cache answers without solving");
        assert_eq!(warm.hits(), 1);
        let direct = ChainFamily::Hypercube.solve(3, 0.4).unwrap();
        assert_eq!(p.to_bits(), direct.to_bits());
    }

    #[test]
    fn entry_order_is_deterministic() {
        let mut a = ChainCache::new();
        let mut b = ChainCache::new();
        // Populate in different orders; the serialised rows must agree.
        for h in [3u32, 1, 2] {
            a.success_probability(ChainFamily::Tree, h, 0.25).unwrap();
        }
        for h in [2u32, 3, 1] {
            b.success_probability(ChainFamily::Tree, h, 0.25).unwrap();
        }
        assert_eq!(a.to_entries(), b.to_entries());
    }

    #[test]
    fn family_names_round_trip() {
        for family in [
            ChainFamily::Ring,
            ChainFamily::Xor,
            ChainFamily::Tree,
            ChainFamily::Hypercube,
        ] {
            assert_eq!(
                ChainFamily::from_geometry_name(family.geometry_name()),
                Some(family)
            );
        }
        assert_eq!(ChainFamily::from_geometry_name("symphony"), None);
    }
}
