//! Prefix utilities for tree-structured (Plaxton and Kademlia) geometries.

use crate::node_id::NodeId;

/// Length of the common most-significant-bit prefix of two identifiers.
///
/// # Panics
///
/// Panics if the identifiers have different widths.
///
/// # Example
///
/// ```rust
/// use dht_id::{common_prefix_len, NodeId};
///
/// let a = NodeId::from_raw(0b1101, 4)?;
/// let b = NodeId::from_raw(0b1100, 4)?;
/// assert_eq!(common_prefix_len(a, b), 3);
/// assert_eq!(common_prefix_len(a, a), 4);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[must_use]
pub fn common_prefix_len(a: NodeId, b: NodeId) -> u32 {
    assert_eq!(a.bits(), b.bits(), "identifiers must share a key space");
    let diff = a.value() ^ b.value();
    if diff == 0 {
        return a.bits();
    }
    // Shift the differing bits up so that bit (bits-1) of the identifier is at
    // position 63, then count leading zeros.
    let shifted = diff << (64 - a.bits());
    shifted.leading_zeros()
}

/// Index (0 = most significant) of the highest-order bit in which the two
/// identifiers differ, or `None` if they are equal.
///
/// This is exactly the bit that the tree/Plaxton geometry must correct on the
/// next hop (§3.1 of the paper).
///
/// # Panics
///
/// Panics if the identifiers have different widths.
#[must_use]
pub fn highest_differing_bit(a: NodeId, b: NodeId) -> Option<u32> {
    let prefix = common_prefix_len(a, b);
    if prefix == a.bits() {
        None
    } else {
        Some(prefix)
    }
}

/// Number of ordered bits already "corrected" when routing from `current`
/// towards `target`: identical to the common prefix length, exposed under the
/// paper's vocabulary for readability at call sites.
#[must_use]
pub fn corrected_bits(current: NodeId, target: NodeId) -> u32 {
    common_prefix_len(current, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspace::KeySpace;

    fn id(value: u64, bits: u32) -> NodeId {
        NodeId::from_raw(value, bits).unwrap()
    }

    #[test]
    fn common_prefix_basic_cases() {
        assert_eq!(common_prefix_len(id(0b0000, 4), id(0b1111, 4)), 0);
        assert_eq!(common_prefix_len(id(0b1000, 4), id(0b1111, 4)), 1);
        assert_eq!(common_prefix_len(id(0b1010, 4), id(0b1011, 4)), 3);
        assert_eq!(common_prefix_len(id(0b1010, 4), id(0b1010, 4)), 4);
    }

    #[test]
    fn highest_differing_bit_is_first_mismatch() {
        assert_eq!(highest_differing_bit(id(0b1010, 4), id(0b1010, 4)), None);
        assert_eq!(highest_differing_bit(id(0b1010, 4), id(0b0010, 4)), Some(0));
        assert_eq!(highest_differing_bit(id(0b1010, 4), id(0b1000, 4)), Some(2));
        assert_eq!(highest_differing_bit(id(0b1010, 4), id(0b1011, 4)), Some(3));
    }

    #[test]
    fn prefix_plus_differing_bit_consistency() {
        let space = KeySpace::new(6).unwrap();
        let ids: Vec<NodeId> = space.iter_ids().collect();
        for &a in &ids {
            for &b in &ids {
                let p = common_prefix_len(a, b);
                match highest_differing_bit(a, b) {
                    None => assert_eq!(a, b),
                    Some(bit) => {
                        assert_eq!(bit, p);
                        // Bits before the differing bit agree, the differing bit does not.
                        for i in 0..bit {
                            assert_eq!(a.bit(i).unwrap(), b.bit(i).unwrap());
                        }
                        assert_ne!(a.bit(bit).unwrap(), b.bit(bit).unwrap());
                    }
                }
            }
        }
    }

    #[test]
    fn corrected_bits_equals_prefix() {
        assert_eq!(corrected_bits(id(0b110, 3), id(0b111, 3)), 2);
    }

    #[test]
    fn full_width_prefix() {
        let a = id(u64::MAX, 64);
        let b = id(u64::MAX - 1, 64);
        assert_eq!(common_prefix_len(a, b), 63);
        assert_eq!(common_prefix_len(a, a), 64);
    }
}
