//! Identifier spaces and distance metrics for DHT routing geometries.
//!
//! The five routing geometries analysed by the RCM paper (tree/Plaxton,
//! hypercube/CAN, XOR/Kademlia, ring/Chord and small-world/Symphony) all
//! operate on fixed-width binary identifiers but measure closeness
//! differently:
//!
//! | Geometry  | Distance                                   |
//! |-----------|--------------------------------------------|
//! | Tree      | index of the highest-order differing bit   |
//! | Hypercube | Hamming distance                           |
//! | XOR       | numeric value of the bitwise XOR           |
//! | Ring      | clockwise numeric (modular) distance       |
//! | Symphony  | clockwise numeric (modular) distance       |
//!
//! This crate provides [`NodeId`] (an identifier of up to 64 bits), the
//! [`KeySpace`] describing an identifier space of `d` bits, and the distance
//! functions in [`distance`]. The paper assumes *fully populated* identifier
//! spaces (`N = 2^d`), which [`KeySpace::iter_ids`] enumerates directly;
//! [`Population`] generalises this to sparse occupancy (`n < 2^d` occupied
//! identifiers), which real deployments exhibit.
//!
//! # Example
//!
//! ```rust
//! use dht_id::{KeySpace, NodeId};
//!
//! let space = KeySpace::new(16)?;
//! let a = NodeId::new(0b1010_0000_0000_0000, &space)?;
//! let b = NodeId::new(0b0010_0000_0000_0000, &space)?;
//! assert_eq!(dht_id::distance::hamming(a, b), 1);
//! assert_eq!(dht_id::distance::xor_distance(a, b), 0b1000_0000_0000_0000);
//! # Ok::<(), dht_id::IdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distance;
pub mod keyspace;
pub mod node_id;
pub mod population;
pub mod prefix;

pub use distance::{hamming, ring_distance, xor_distance};
pub use keyspace::KeySpace;
pub use node_id::{IdError, NodeId};
pub use population::Population;
pub use prefix::{common_prefix_len, highest_differing_bit};
