//! Distance metrics used by the five routing geometries.

use crate::node_id::NodeId;

/// XOR distance between two identifiers (Kademlia, §3.3 of the paper).
///
/// # Panics
///
/// Panics if the identifiers have different widths.
///
/// # Example
///
/// ```rust
/// use dht_id::{xor_distance, NodeId};
///
/// let a = NodeId::from_raw(0b010, 3)?;
/// let b = NodeId::from_raw(0b101, 3)?;
/// assert_eq!(xor_distance(a, b), 0b111);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[must_use]
pub fn xor_distance(a: NodeId, b: NodeId) -> u64 {
    assert_eq!(a.bits(), b.bits(), "identifiers must share a key space");
    a.value() ^ b.value()
}

/// Hamming distance between two identifiers (CAN hypercube, §3.2).
///
/// # Panics
///
/// Panics if the identifiers have different widths.
#[must_use]
pub fn hamming(a: NodeId, b: NodeId) -> u32 {
    assert_eq!(a.bits(), b.bits(), "identifiers must share a key space");
    (a.value() ^ b.value()).count_ones()
}

/// Clockwise ring distance from `a` to `b` (Chord and Symphony, §3.4–3.5).
///
/// This is the number of positions one must travel clockwise (in increasing
/// identifier order, wrapping at `2^d`) to get from `a` to `b`. It is *not*
/// symmetric: `ring_distance(a, b) + ring_distance(b, a) == 2^d` unless
/// `a == b`.
///
/// # Panics
///
/// Panics if the identifiers have different widths.
///
/// # Example
///
/// ```rust
/// use dht_id::{ring_distance, NodeId};
///
/// let a = NodeId::from_raw(6, 3)?;
/// let b = NodeId::from_raw(1, 3)?;
/// assert_eq!(ring_distance(a, b), 3); // 6 → 7 → 0 → 1
/// assert_eq!(ring_distance(b, a), 5);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[must_use]
pub fn ring_distance(a: NodeId, b: NodeId) -> u64 {
    assert_eq!(a.bits(), b.bits(), "identifiers must share a key space");
    let modulus_mask = if a.bits() == 64 {
        u64::MAX
    } else {
        (1u64 << a.bits()) - 1
    };
    b.value().wrapping_sub(a.value()) & modulus_mask
}

/// Absolute (bidirectional) ring distance: the smaller of the two travel
/// directions. Symphony draws its shortcuts from a harmonic distribution over
/// this distance.
///
/// # Panics
///
/// Panics if the identifiers have different widths.
#[must_use]
pub fn ring_distance_min(a: NodeId, b: NodeId) -> u64 {
    let clockwise = ring_distance(a, b);
    let counter = ring_distance(b, a);
    clockwise.min(counter)
}

/// The *phase* of a distance value as defined in §3 of the paper: the routing
/// process is in phase `j` when the (numeric or XOR) distance to the target
/// lies in `[2^j, 2^{j+1})`. Returns `None` for distance zero (arrived).
///
/// # Example
///
/// ```rust
/// use dht_id::distance::phase_of_distance;
///
/// assert_eq!(phase_of_distance(0), None);
/// assert_eq!(phase_of_distance(1), Some(0));
/// assert_eq!(phase_of_distance(5), Some(2));
/// assert_eq!(phase_of_distance(1 << 15), Some(15));
/// ```
#[must_use]
pub fn phase_of_distance(distance: u64) -> Option<u32> {
    if distance == 0 {
        None
    } else {
        Some(63 - distance.leading_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspace::KeySpace;

    fn id(value: u64, bits: u32) -> NodeId {
        NodeId::from_raw(value, bits).unwrap()
    }

    #[test]
    fn xor_distance_is_a_metric_on_small_space() {
        let space = KeySpace::new(4).unwrap();
        let ids: Vec<NodeId> = space.iter_ids().collect();
        for &a in &ids {
            assert_eq!(xor_distance(a, a), 0);
            for &b in &ids {
                assert_eq!(xor_distance(a, b), xor_distance(b, a));
                for &c in &ids {
                    // XOR satisfies the stronger relation d(a,c) = d(a,b) ^ d(b,c),
                    // which implies the triangle inequality.
                    assert_eq!(xor_distance(a, c), xor_distance(a, b) ^ xor_distance(b, c));
                }
            }
        }
    }

    #[test]
    fn hamming_counts_differing_bits() {
        assert_eq!(hamming(id(0b0000, 4), id(0b1111, 4)), 4);
        assert_eq!(hamming(id(0b1010, 4), id(0b1000, 4)), 1);
        assert_eq!(hamming(id(0b1010, 4), id(0b1010, 4)), 0);
    }

    #[test]
    fn ring_distance_wraps_clockwise() {
        assert_eq!(ring_distance(id(6, 3), id(1, 3)), 3);
        assert_eq!(ring_distance(id(1, 3), id(6, 3)), 5);
        assert_eq!(ring_distance(id(0, 3), id(0, 3)), 0);
        assert_eq!(ring_distance(id(7, 3), id(0, 3)), 1);
    }

    #[test]
    fn ring_distances_sum_to_modulus() {
        let space = KeySpace::new(5).unwrap();
        let ids: Vec<NodeId> = space.iter_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    assert_eq!(ring_distance(a, b) + ring_distance(b, a), 32);
                }
            }
        }
    }

    #[test]
    fn ring_distance_min_is_symmetric_and_bounded() {
        let space = KeySpace::new(6).unwrap();
        let ids: Vec<NodeId> = space.iter_ids().collect();
        for &a in &ids {
            for &b in &ids {
                let d = ring_distance_min(a, b);
                assert_eq!(d, ring_distance_min(b, a));
                assert!(d <= 32);
            }
        }
    }

    #[test]
    fn phase_matches_binary_magnitude() {
        assert_eq!(phase_of_distance(0), None);
        for j in 0..20u32 {
            let lo = 1u64 << j;
            let hi = (1u64 << (j + 1)) - 1;
            assert_eq!(phase_of_distance(lo), Some(j));
            assert_eq!(phase_of_distance(hi), Some(j));
        }
    }

    #[test]
    #[should_panic(expected = "share a key space")]
    fn mismatched_widths_panic() {
        let _ = xor_distance(id(1, 3), id(1, 4));
    }

    #[test]
    fn full_width_ring_distance() {
        let a = id(u64::MAX, 64);
        let b = id(2, 64);
        assert_eq!(ring_distance(a, b), 3);
    }
}
