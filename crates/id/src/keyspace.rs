//! Description of a `d`-bit identifier space.

use crate::node_id::{IdError, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A `d`-bit identifier space holding up to `2^d` identifiers.
///
/// The RCM paper assumes fully populated identifier spaces (`N = 2^d`, §4.1);
/// [`KeySpace::iter_ids`] enumerates exactly that population. Widths up to 32
/// bits can be fully enumerated in practice; the type supports up to 64 bits
/// for sparse use.
///
/// # Example
///
/// ```rust
/// use dht_id::KeySpace;
///
/// let space = KeySpace::new(4)?;
/// assert_eq!(space.population(), 16);
/// assert_eq!(space.iter_ids().count(), 16);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KeySpace {
    bits: u32,
}

impl KeySpace {
    /// Creates a key space of `bits` bits.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::InvalidWidth`] unless `1 <= bits <= 64`.
    pub fn new(bits: u32) -> Result<Self, IdError> {
        if bits == 0 || bits > 64 {
            return Err(IdError::InvalidWidth { bits });
        }
        Ok(KeySpace { bits })
    }

    /// Creates the smallest key space that can hold `n` identifiers, i.e.
    /// `d = ceil(log2 n)`.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::InvalidWidth`] if `n < 2`.
    pub fn for_population(n: u64) -> Result<Self, IdError> {
        if n < 2 {
            return Err(IdError::InvalidWidth { bits: 0 });
        }
        let bits = 64 - (n - 1).leading_zeros();
        KeySpace::new(bits)
    }

    /// The identifier width `d` in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The number of identifiers in the fully populated space, `2^d`.
    ///
    /// Saturates at `u64::MAX` for `d = 64`.
    #[must_use]
    pub fn population(self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            1u64 << self.bits
        }
    }

    /// The largest representable identifier value, `2^d − 1`.
    #[must_use]
    pub fn max_value(self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Wraps a raw value into the space by masking off excess high bits.
    #[must_use]
    pub fn wrap(self, value: u64) -> NodeId {
        NodeId::from_raw(value & self.max_value(), self.bits)
            .expect("masked value always fits the key space")
    }

    /// Draws an identifier uniformly at random.
    pub fn random_id<R: Rng + ?Sized>(self, rng: &mut R) -> NodeId {
        self.wrap(rng.gen::<u64>())
    }

    /// Iterates over every identifier of the fully populated space in
    /// ascending numeric order.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 32`; enumerating more than `2^32` identifiers is
    /// never intended and would loop for days.
    pub fn iter_ids(self) -> impl Iterator<Item = NodeId> {
        assert!(
            self.bits <= 32,
            "refusing to enumerate a {}-bit identifier space",
            self.bits
        );
        let bits = self.bits;
        (0..self.population()).map(move |v| {
            NodeId::from_raw(v, bits).expect("enumerated value always fits the key space")
        })
    }
}

impl std::fmt::Display for KeySpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-bit key space", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_bounds() {
        assert!(KeySpace::new(1).is_ok());
        assert!(KeySpace::new(64).is_ok());
        assert!(KeySpace::new(0).is_err());
        assert!(KeySpace::new(65).is_err());
    }

    #[test]
    fn population_and_max_value() {
        let s = KeySpace::new(10).unwrap();
        assert_eq!(s.population(), 1024);
        assert_eq!(s.max_value(), 1023);
        let full = KeySpace::new(64).unwrap();
        assert_eq!(full.max_value(), u64::MAX);
    }

    #[test]
    fn for_population_rounds_up() {
        assert_eq!(KeySpace::for_population(2).unwrap().bits(), 1);
        assert_eq!(KeySpace::for_population(1024).unwrap().bits(), 10);
        assert_eq!(KeySpace::for_population(1025).unwrap().bits(), 11);
        assert!(KeySpace::for_population(1).is_err());
    }

    #[test]
    fn wrap_masks_high_bits() {
        let s = KeySpace::new(4).unwrap();
        assert_eq!(s.wrap(0xFF).value(), 0xF);
        assert_eq!(s.wrap(0x10).value(), 0);
    }

    #[test]
    fn iter_ids_enumerates_full_population() {
        let s = KeySpace::new(6).unwrap();
        let ids: Vec<u64> = s.iter_ids().map(|id| id.value()).collect();
        assert_eq!(ids.len(), 64);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[63], 63);
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn random_ids_are_in_range_and_deterministic() {
        let s = KeySpace::new(12).unwrap();
        let mut rng_a = ChaCha8Rng::seed_from_u64(7);
        let mut rng_b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let a = s.random_id(&mut rng_a);
            let b = s.random_id(&mut rng_b);
            assert_eq!(a, b);
            assert!(a.value() <= s.max_value());
        }
    }

    #[test]
    fn display_mentions_width() {
        assert_eq!(KeySpace::new(16).unwrap().to_string(), "16-bit key space");
    }
}
