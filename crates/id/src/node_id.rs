//! Fixed-width binary node identifiers.

use crate::keyspace::KeySpace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type for identifier construction and manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdError {
    /// The identifier width is zero or exceeds the supported 64 bits.
    InvalidWidth {
        /// The rejected width.
        bits: u32,
    },
    /// The raw value does not fit into the identifier width.
    ValueOutOfRange {
        /// The rejected value.
        value: u64,
        /// The identifier width in bits.
        bits: u32,
    },
    /// A bit index was outside the identifier width.
    BitOutOfRange {
        /// The rejected bit index.
        bit: u32,
        /// The identifier width in bits.
        bits: u32,
    },
    /// A sparse population was constructed with no occupied identifiers.
    EmptyPopulation,
}

impl fmt::Display for IdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdError::InvalidWidth { bits } => {
                write!(
                    f,
                    "identifier width must be between 1 and 64 bits, got {bits}"
                )
            }
            IdError::ValueOutOfRange { value, bits } => {
                write!(f, "value {value} does not fit in a {bits}-bit identifier")
            }
            IdError::BitOutOfRange { bit, bits } => {
                write!(f, "bit index {bit} is outside a {bits}-bit identifier")
            }
            IdError::EmptyPopulation => {
                write!(f, "a population needs at least one occupied identifier")
            }
        }
    }
}

impl std::error::Error for IdError {}

/// A node identifier in a `d`-bit identifier space.
///
/// Identifiers are stored as a `u64` value together with their width, which
/// bounds the supported identifier space at `2^64` nodes — far beyond what an
/// executable overlay can instantiate (the analytical crates use log-domain
/// arithmetic instead of identifiers when `d` is as large as 100).
///
/// Bit indexing follows the paper's convention: **bit 0 is the most
/// significant (leftmost) bit**, bits are "corrected" left to right.
///
/// # Example
///
/// ```rust
/// use dht_id::{KeySpace, NodeId};
///
/// let space = KeySpace::new(3)?;
/// let id = NodeId::new(0b011, &space)?;
/// assert_eq!(id.bit(0)?, false); // leftmost bit
/// assert_eq!(id.bit(2)?, true);  // rightmost bit
/// assert_eq!(id.flip_bit(0)?.value(), 0b111);
/// # Ok::<(), dht_id::IdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId {
    value: u64,
    bits: u32,
}

impl NodeId {
    /// Creates an identifier from a raw value within the given key space.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::ValueOutOfRange`] if `value >= 2^d`.
    pub fn new(value: u64, space: &KeySpace) -> Result<Self, IdError> {
        if value > space.max_value() {
            return Err(IdError::ValueOutOfRange {
                value,
                bits: space.bits(),
            });
        }
        Ok(NodeId {
            value,
            bits: space.bits(),
        })
    }

    /// Creates an identifier without bounds checking against a key space.
    ///
    /// # Errors
    ///
    /// Returns an error if `bits` is not in `1..=64` or the value does not fit.
    pub fn from_raw(value: u64, bits: u32) -> Result<Self, IdError> {
        if bits == 0 || bits > 64 {
            return Err(IdError::InvalidWidth { bits });
        }
        let max = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        if value > max {
            return Err(IdError::ValueOutOfRange { value, bits });
        }
        Ok(NodeId { value, bits })
    }

    /// The raw numeric value of the identifier.
    #[must_use]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The identifier width in bits.
    #[must_use]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Reads the bit at `index`, where index 0 is the most significant bit.
    ///
    /// # Errors
    ///
    /// Returns [`IdError::BitOutOfRange`] if `index >= bits`.
    pub fn bit(self, index: u32) -> Result<bool, IdError> {
        if index >= self.bits {
            return Err(IdError::BitOutOfRange {
                bit: index,
                bits: self.bits,
            });
        }
        Ok((self.value >> (self.bits - 1 - index)) & 1 == 1)
    }

    /// Returns a copy with the bit at `index` flipped (index 0 = MSB).
    ///
    /// # Errors
    ///
    /// Returns [`IdError::BitOutOfRange`] if `index >= bits`.
    pub fn flip_bit(self, index: u32) -> Result<Self, IdError> {
        if index >= self.bits {
            return Err(IdError::BitOutOfRange {
                bit: index,
                bits: self.bits,
            });
        }
        Ok(NodeId {
            value: self.value ^ (1u64 << (self.bits - 1 - index)),
            bits: self.bits,
        })
    }

    /// Returns a copy with the bit at `index` set to `bit` (index 0 = MSB).
    ///
    /// # Errors
    ///
    /// Returns [`IdError::BitOutOfRange`] if `index >= bits`.
    pub fn with_bit(self, index: u32, bit: bool) -> Result<Self, IdError> {
        if index >= self.bits {
            return Err(IdError::BitOutOfRange {
                bit: index,
                bits: self.bits,
            });
        }
        let mask = 1u64 << (self.bits - 1 - index);
        let value = if bit {
            self.value | mask
        } else {
            self.value & !mask
        };
        Ok(NodeId {
            value,
            bits: self.bits,
        })
    }

    /// Returns the identifier as a big-endian bit vector (index 0 = MSB).
    #[must_use]
    pub fn to_bits(self) -> Vec<bool> {
        (0..self.bits)
            .map(|i| (self.value >> (self.bits - 1 - i)) & 1 == 1)
            .collect()
    }

    /// Returns an identifier that keeps the first `prefix_len` bits of `self`
    /// and takes the remaining bits from `suffix_source`.
    ///
    /// This is how the XOR/Kademlia and Plaxton geometries pick the `i`-th
    /// neighbour: match the first `i-1` bits, flip the `i`-th and randomise the
    /// rest (§3.3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns [`IdError::BitOutOfRange`] if `prefix_len > bits` or the widths
    /// of the two identifiers differ.
    pub fn splice_prefix(self, prefix_len: u32, suffix_source: NodeId) -> Result<Self, IdError> {
        if prefix_len > self.bits || suffix_source.bits != self.bits {
            return Err(IdError::BitOutOfRange {
                bit: prefix_len,
                bits: self.bits,
            });
        }
        if prefix_len == 0 {
            return Ok(suffix_source);
        }
        if prefix_len == self.bits {
            return Ok(self);
        }
        let suffix_bits = self.bits - prefix_len;
        let suffix_mask = if suffix_bits == 64 {
            u64::MAX
        } else {
            (1u64 << suffix_bits) - 1
        };
        Ok(NodeId {
            value: (self.value & !suffix_mask) | (suffix_source.value & suffix_mask),
            bits: self.bits,
        })
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.value, width = self.bits as usize)
    }
}

impl fmt::Binary for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.value, f)
    }
}

impl fmt::LowerHex for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.value, f)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> u64 {
        id.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).expect("valid key space")
    }

    #[test]
    fn construction_respects_bounds() {
        let s = space(4);
        assert!(NodeId::new(15, &s).is_ok());
        assert_eq!(
            NodeId::new(16, &s),
            Err(IdError::ValueOutOfRange { value: 16, bits: 4 })
        );
    }

    #[test]
    fn from_raw_validates_width() {
        assert!(NodeId::from_raw(0, 1).is_ok());
        assert!(NodeId::from_raw(u64::MAX, 64).is_ok());
        assert_eq!(
            NodeId::from_raw(1, 0),
            Err(IdError::InvalidWidth { bits: 0 })
        );
        assert_eq!(
            NodeId::from_raw(1, 65),
            Err(IdError::InvalidWidth { bits: 65 })
        );
        assert_eq!(
            NodeId::from_raw(4, 2),
            Err(IdError::ValueOutOfRange { value: 4, bits: 2 })
        );
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let s = space(3);
        let id = NodeId::new(0b011, &s).unwrap();
        assert!(!id.bit(0).unwrap());
        assert!(id.bit(1).unwrap());
        assert!(id.bit(2).unwrap());
        assert!(id.bit(3).is_err());
    }

    #[test]
    fn flip_bit_round_trips() {
        let s = space(8);
        let id = NodeId::new(0b1010_1010, &s).unwrap();
        for i in 0..8 {
            let flipped = id.flip_bit(i).unwrap();
            assert_ne!(flipped, id);
            assert_eq!(flipped.flip_bit(i).unwrap(), id);
        }
    }

    #[test]
    fn with_bit_sets_and_clears() {
        let s = space(4);
        let id = NodeId::new(0b0000, &s).unwrap();
        let set = id.with_bit(1, true).unwrap();
        assert_eq!(set.value(), 0b0100);
        assert_eq!(set.with_bit(1, false).unwrap(), id);
    }

    #[test]
    fn to_bits_matches_display() {
        let s = space(5);
        let id = NodeId::new(0b10110, &s).unwrap();
        assert_eq!(format!("{id}"), "10110");
        assert_eq!(id.to_bits(), vec![true, false, true, true, false]);
    }

    #[test]
    fn splice_prefix_keeps_prefix_and_takes_suffix() {
        let s = space(8);
        let base = NodeId::new(0b1111_0000, &s).unwrap();
        let other = NodeId::new(0b0000_1010, &s).unwrap();
        let spliced = base.splice_prefix(4, other).unwrap();
        assert_eq!(spliced.value(), 0b1111_1010);
        // Degenerate prefix lengths.
        assert_eq!(base.splice_prefix(0, other).unwrap(), other);
        assert_eq!(base.splice_prefix(8, other).unwrap(), base);
    }

    #[test]
    fn splice_prefix_rejects_mismatched_width() {
        let a = NodeId::from_raw(1, 4).unwrap();
        let b = NodeId::from_raw(1, 5).unwrap();
        assert!(a.splice_prefix(2, b).is_err());
    }

    #[test]
    fn display_of_error_is_informative() {
        let err = IdError::ValueOutOfRange { value: 9, bits: 3 };
        assert!(err.to_string().contains("9"));
        assert!(err.to_string().contains("3-bit"));
    }

    #[test]
    fn full_width_identifiers_work() {
        let id = NodeId::from_raw(u64::MAX, 64).unwrap();
        assert!(id.bit(0).unwrap());
        assert!(id.bit(63).unwrap());
        assert_eq!(id.flip_bit(0).unwrap().value(), u64::MAX >> 1);
    }
}
