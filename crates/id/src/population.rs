//! Occupancy of an identifier space: fully or sparsely populated.
//!
//! The RCM paper measures routing over *fully populated* identifier spaces
//! (`N = 2^d`, §4.1); real Chord/Kademlia deployments occupy only a sparse
//! subset of their `2^d` identifiers. A [`Population`] captures either case
//! behind one interface so overlay construction, failure sampling and pair
//! sampling can be written once:
//!
//! * [`Population::full`] — every identifier of the space is a node; all
//!   queries are O(1) arithmetic and nothing is materialised.
//! * [`Population::sparse`] — an explicit occupied set, kept sorted, plus a
//!   dense rank table for O(1) membership and index lookups.
//!
//! Ranks are the bridge between the two: occupied nodes are numbered
//! `0..node_count()` in ascending identifier order, and for a full population
//! the rank of a node *is* its identifier value. Overlay routing tables can
//! therefore be stored in one flat arena indexed by rank regardless of
//! occupancy.
//!
//! # Example
//!
//! ```rust
//! use dht_id::{KeySpace, Population};
//!
//! let space = KeySpace::new(8)?;
//! let full = Population::full(space);
//! assert_eq!(full.node_count(), 256);
//!
//! let sparse = Population::sparse(space, [space.wrap(3), space.wrap(200)])?;
//! assert_eq!(sparse.node_count(), 2);
//! assert!(sparse.contains(space.wrap(200)));
//! assert!(!sparse.contains(space.wrap(4)));
//! // The successor walks clockwise to the next occupied identifier.
//! assert_eq!(sparse.successor(4).value(), 200);
//! assert_eq!(sparse.successor(201).value(), 3); // wraps around the ring
//! # Ok::<(), dht_id::IdError>(())
//! ```

use crate::keyspace::KeySpace;
use crate::node_id::{IdError, NodeId};
use rand::Rng;

/// The largest identifier length a sparse population will index.
///
/// Sparse populations keep a dense rank table with one entry per identifier
/// of the space, so the ceiling matches [`KeySpace::iter_ids`]'s enumeration
/// limit.
pub const MAX_SPARSE_BITS: u32 = 32;

/// Which identifiers of a [`KeySpace`] are occupied by nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population {
    space: KeySpace,
    /// `None` means fully populated.
    sparse: Option<SparseIndex>,
}

/// Sorted occupied set plus a dense value-to-rank table.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SparseIndex {
    /// Occupied identifiers in ascending order.
    nodes: Vec<NodeId>,
    /// `rank[value]` is the rank of the occupied identifier `value`, or
    /// [`UNOCCUPIED`] when the identifier has no node.
    rank: Vec<u32>,
}

/// Sentinel in the dense rank table for identifiers without a node.
const UNOCCUPIED: u32 = u32::MAX;

impl Population {
    /// The fully populated space: every identifier is a node.
    #[must_use]
    pub fn full(space: KeySpace) -> Self {
        Population {
            space,
            sparse: None,
        }
    }

    /// A sparse population over `space` occupying exactly `nodes`
    /// (duplicates collapse, order is irrelevant).
    ///
    /// # Errors
    ///
    /// * [`IdError::InvalidWidth`] if `space` is wider than
    ///   [`MAX_SPARSE_BITS`] (the dense rank table would not fit).
    /// * [`IdError::ValueOutOfRange`] if a node belongs to a different space.
    /// * [`IdError::EmptyPopulation`] if no node remains after deduplication.
    pub fn sparse<I>(space: KeySpace, nodes: I) -> Result<Self, IdError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        if space.bits() > MAX_SPARSE_BITS {
            return Err(IdError::InvalidWidth { bits: space.bits() });
        }
        let mut occupied: Vec<NodeId> = Vec::new();
        for node in nodes {
            if node.bits() != space.bits() {
                return Err(IdError::ValueOutOfRange {
                    value: node.value(),
                    bits: space.bits(),
                });
            }
            occupied.push(node);
        }
        occupied.sort_unstable();
        occupied.dedup();
        if occupied.is_empty() {
            return Err(IdError::EmptyPopulation);
        }
        if occupied.len() as u64 == space.population() {
            // Every identifier occupied: collapse to the full representation.
            return Ok(Population::full(space));
        }
        let mut rank = vec![UNOCCUPIED; space.population() as usize];
        for (index, node) in occupied.iter().enumerate() {
            rank[node.value() as usize] = index as u32;
        }
        Ok(Population {
            space,
            sparse: Some(SparseIndex {
                nodes: occupied,
                rank,
            }),
        })
    }

    /// Samples a population of exactly `count` distinct identifiers uniformly
    /// at random.
    ///
    /// A `count` equal to the space's population yields the full population.
    ///
    /// # Errors
    ///
    /// * [`IdError::EmptyPopulation`] if `count` is zero.
    /// * [`IdError::ValueOutOfRange`] if `count` exceeds the population.
    /// * [`IdError::InvalidWidth`] if `space` is wider than
    ///   [`MAX_SPARSE_BITS`].
    pub fn sample_uniform<R: Rng + ?Sized>(
        space: KeySpace,
        count: u64,
        rng: &mut R,
    ) -> Result<Self, IdError> {
        if count == 0 {
            return Err(IdError::EmptyPopulation);
        }
        if count > space.population() {
            return Err(IdError::ValueOutOfRange {
                value: count,
                bits: space.bits(),
            });
        }
        if count == space.population() {
            return Ok(Population::full(space));
        }
        if space.bits() > MAX_SPARSE_BITS {
            return Err(IdError::InvalidWidth { bits: space.bits() });
        }
        // Rejection-sample whichever side is smaller, then (when the excluded
        // side was drawn) take the complement; the acceptance rate stays above
        // one half either way.
        let population = space.population();
        let draw_excluded = count > population / 2;
        let draws = if draw_excluded {
            population - count
        } else {
            count
        };
        let mut marked = vec![false; population as usize];
        let mut remaining = draws;
        while remaining > 0 {
            let value = rng.gen_range(0..population);
            let slot = &mut marked[value as usize];
            if !*slot {
                *slot = true;
                remaining -= 1;
            }
        }
        let occupied = marked
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m != draw_excluded)
            .map(|(value, _)| space.wrap(value as u64));
        Population::sparse(space, occupied)
    }

    /// The identifier space this population occupies.
    #[must_use]
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// `true` when every identifier of the space is occupied.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.sparse.is_none()
    }

    /// Number of occupied identifiers.
    #[must_use]
    pub fn node_count(&self) -> u64 {
        match &self.sparse {
            None => self.space.population(),
            Some(index) => index.nodes.len() as u64,
        }
    }

    /// Occupied fraction of the space, `node_count / 2^d`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.node_count() as f64 / self.space.population() as f64
    }

    /// Returns `true` if `node` is occupied (a node of a different key space
    /// is never occupied).
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.index_of(node).is_some()
    }

    /// The rank of `node` among occupied identifiers in ascending order, or
    /// `None` when `node` is unoccupied or from another space.
    #[must_use]
    pub fn index_of(&self, node: NodeId) -> Option<u64> {
        if node.bits() != self.space.bits() {
            return None;
        }
        self.rank_of_value(node.value())
    }

    /// The rank of the occupied identifier with raw value `value`, or `None`
    /// when the value is unoccupied or lies outside the space.
    ///
    /// This is the [`NodeId`]-free twin of [`Population::index_of`]: batch
    /// drivers that move identifiers around as raw `u64`s (the compiled
    /// routing kernel of `dht-overlay`) map value → rank without
    /// materialising an identifier. For a full population the rank *is* the
    /// value; for a sparse one this is a dense-table read, O(1).
    #[inline]
    #[must_use]
    pub fn rank_of_value(&self, value: u64) -> Option<u64> {
        if value > self.space.max_value() {
            return None;
        }
        match &self.sparse {
            None => Some(value),
            Some(index) => match index.rank[value as usize] {
                UNOCCUPIED => None,
                rank => Some(u64::from(rank)),
            },
        }
    }

    /// The occupied identifier of rank `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= node_count()`.
    #[must_use]
    pub fn node_at(&self, index: u64) -> NodeId {
        match &self.sparse {
            None => {
                assert!(index < self.space.population(), "rank out of range");
                self.space.wrap(index)
            }
            Some(sparse) => sparse.nodes[index as usize],
        }
    }

    /// The first occupied identifier at or clockwise after `value` (which may
    /// exceed the space and is wrapped first).
    ///
    /// For a full population this is simply `value mod 2^d`; for a sparse one
    /// it is the Chord-style successor.
    #[must_use]
    pub fn successor(&self, value: u64) -> NodeId {
        let wrapped = value & self.space.max_value();
        match &self.sparse {
            None => self.space.wrap(wrapped),
            Some(sparse) => {
                let index = sparse.nodes.partition_point(|n| n.value() < wrapped);
                if index == sparse.nodes.len() {
                    sparse.nodes[0]
                } else {
                    sparse.nodes[index]
                }
            }
        }
    }

    /// Draws an occupied identifier uniformly at random.
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        match &self.sparse {
            None => self.space.random_id(rng),
            Some(sparse) => sparse.nodes[rng.gen_range(0..sparse.nodes.len())],
        }
    }

    /// Draws an occupied identifier uniformly from the inclusive value range
    /// `[lo, hi]`, or returns `None` when the range contains no node.
    pub fn random_in_range<R: Rng + ?Sized>(
        &self,
        lo: u64,
        hi: u64,
        rng: &mut R,
    ) -> Option<NodeId> {
        if lo > hi || lo > self.space.max_value() {
            return None;
        }
        let hi = hi.min(self.space.max_value());
        match &self.sparse {
            // `hi - lo + 1` would overflow when the range spans the whole
            // 64-bit space, so draw the offset from `0..=span` instead.
            None => {
                let span = hi - lo;
                let offset = if span == u64::MAX {
                    rng.gen::<u64>()
                } else {
                    rng.gen_range(0..span + 1)
                };
                Some(self.space.wrap(lo + offset))
            }
            Some(sparse) => {
                let start = sparse.nodes.partition_point(|n| n.value() < lo);
                let end = sparse.nodes.partition_point(|n| n.value() <= hi);
                if start == end {
                    None
                } else {
                    Some(sparse.nodes[start + rng.gen_range(0..end - start)])
                }
            }
        }
    }

    /// Iterates over the occupied identifiers in ascending order.
    ///
    /// # Panics
    ///
    /// Panics for a full population wider than 32 bits (see
    /// [`KeySpace::iter_ids`]).
    pub fn iter_nodes(&self) -> PopulationIter<'_> {
        match &self.sparse {
            None => {
                assert!(
                    self.space.bits() <= MAX_SPARSE_BITS,
                    "refusing to enumerate a {}-bit identifier space",
                    self.space.bits()
                );
                PopulationIter::Full {
                    range: 0..self.space.population(),
                    bits: self.space.bits(),
                }
            }
            Some(sparse) => PopulationIter::Sparse(sparse.nodes.iter()),
        }
    }
}

impl std::fmt::Display for Population {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_full() {
            write!(f, "fully populated {}", self.space)
        } else {
            write!(
                f,
                "{} of {} identifiers occupied in a {}",
                self.node_count(),
                self.space.population(),
                self.space
            )
        }
    }
}

/// Iterator over the occupied identifiers of a [`Population`].
#[derive(Debug, Clone)]
pub enum PopulationIter<'a> {
    /// Full population: every identifier in ascending order.
    Full {
        /// Remaining identifier values.
        range: std::ops::Range<u64>,
        /// Identifier width of the space.
        bits: u32,
    },
    /// Sparse population: the sorted occupied set.
    Sparse(std::slice::Iter<'a, NodeId>),
}

impl Iterator for PopulationIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match self {
            PopulationIter::Full { range, bits } => range
                .next()
                .map(|value| NodeId::from_raw(value, *bits).expect("value fits the key space")),
            PopulationIter::Sparse(iter) => iter.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            PopulationIter::Full { range, .. } => range.size_hint(),
            PopulationIter::Sparse(iter) => iter.size_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn space(bits: u32) -> KeySpace {
        KeySpace::new(bits).unwrap()
    }

    #[test]
    fn full_population_mirrors_the_key_space() {
        let population = Population::full(space(6));
        assert!(population.is_full());
        assert_eq!(population.node_count(), 64);
        assert_eq!(population.occupancy(), 1.0);
        assert!(population.contains(space(6).wrap(63)));
        assert_eq!(population.index_of(space(6).wrap(17)), Some(17));
        assert_eq!(population.node_at(17), space(6).wrap(17));
        assert_eq!(population.successor(70).value(), 6);
        assert_eq!(population.iter_nodes().count(), 64);
    }

    #[test]
    fn sparse_population_sorts_and_dedups() {
        let s = space(8);
        let population =
            Population::sparse(s, [s.wrap(9), s.wrap(3), s.wrap(9), s.wrap(200)]).unwrap();
        assert!(!population.is_full());
        assert_eq!(population.node_count(), 3);
        let ids: Vec<u64> = population.iter_nodes().map(|n| n.value()).collect();
        assert_eq!(ids, vec![3, 9, 200]);
        assert_eq!(population.index_of(s.wrap(9)), Some(1));
        assert_eq!(population.index_of(s.wrap(10)), None);
        assert_eq!(population.node_at(2), s.wrap(200));
    }

    #[test]
    fn successor_wraps_the_ring() {
        let s = space(8);
        let population = Population::sparse(s, [s.wrap(10), s.wrap(100)]).unwrap();
        assert_eq!(population.successor(0).value(), 10);
        assert_eq!(population.successor(10).value(), 10);
        assert_eq!(population.successor(11).value(), 100);
        assert_eq!(population.successor(101).value(), 10);
        // Values beyond the space are wrapped before the search.
        assert_eq!(population.successor(256 + 11).value(), 100);
    }

    #[test]
    fn random_in_range_respects_bounds_and_emptiness() {
        let s = space(8);
        let population = Population::sparse(s, [s.wrap(10), s.wrap(20), s.wrap(30)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let node = population.random_in_range(15, 25, &mut rng).unwrap();
            assert_eq!(node.value(), 20);
        }
        assert!(population.random_in_range(11, 19, &mut rng).is_none());
        assert!(population.random_in_range(40, 30, &mut rng).is_none());
        // Full populations draw uniformly from the raw range.
        let full = Population::full(s);
        for _ in 0..100 {
            let node = full.random_in_range(15, 25, &mut rng).unwrap();
            assert!((15..=25).contains(&node.value()));
        }
    }

    #[test]
    fn random_in_range_covers_the_widest_spaces_without_overflow() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let full64 = Population::full(space(64));
        for _ in 0..50 {
            assert!(full64.random_in_range(0, u64::MAX, &mut rng).is_some());
        }
        // A full-width single-value range stays exact.
        let node = full64.random_in_range(42, 42, &mut rng).unwrap();
        assert_eq!(node.value(), 42);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let s = space(8);
        assert_eq!(
            Population::sparse(s, std::iter::empty()),
            Err(IdError::EmptyPopulation)
        );
        let other = space(9);
        assert_eq!(
            Population::sparse(s, [other.wrap(1)]),
            Err(IdError::ValueOutOfRange { value: 1, bits: 8 })
        );
        let wide = space(40);
        assert_eq!(
            Population::sparse(wide, [wide.wrap(1)]),
            Err(IdError::InvalidWidth { bits: 40 })
        );
    }

    #[test]
    fn fully_occupied_sparse_collapses_to_full() {
        let s = space(3);
        let population = Population::sparse(s, s.iter_ids()).unwrap();
        assert!(population.is_full());
    }

    #[test]
    fn sample_uniform_draws_exact_counts() {
        let s = space(10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for count in [1u64, 100, 512, 900, 1024] {
            let population = Population::sample_uniform(s, count, &mut rng).unwrap();
            assert_eq!(population.node_count(), count, "count = {count}");
            assert_eq!(population.is_full(), count == 1024);
        }
        assert_eq!(
            Population::sample_uniform(s, 0, &mut rng),
            Err(IdError::EmptyPopulation)
        );
        assert!(Population::sample_uniform(s, 1025, &mut rng).is_err());
    }

    #[test]
    fn sample_uniform_is_deterministic_and_roughly_uniform() {
        let s = space(12);
        let a = Population::sample_uniform(s, 1000, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        let b = Population::sample_uniform(s, 1000, &mut ChaCha8Rng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        // Both halves of the space should hold roughly half the nodes.
        let lower = a.iter_nodes().filter(|n| n.value() < 2048).count();
        assert!((400..=600).contains(&lower), "lower half holds {lower}");
    }

    #[test]
    fn random_node_only_returns_occupied_ids() {
        let s = space(8);
        let population = Population::sparse(s, (0..16).map(|v| s.wrap(v * 16))).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..200 {
            assert!(population.contains(population.random_node(&mut rng)));
        }
    }

    #[test]
    fn display_describes_both_shapes() {
        let s = space(6);
        assert!(Population::full(s).to_string().contains("fully populated"));
        let sparse = Population::sparse(s, [s.wrap(1)]).unwrap();
        assert!(sparse.to_string().contains("1 of 64"));
    }

    #[test]
    fn mismatched_width_is_never_contained() {
        let population = Population::full(space(6));
        assert!(!population.contains(space(7).wrap(3)));
        assert_eq!(population.index_of(space(7).wrap(3)), None);
    }
}
