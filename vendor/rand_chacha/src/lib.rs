//! Offline vendored ChaCha random number generators.
//!
//! Implements the ChaCha stream cipher keyed by a 256-bit seed as a
//! deterministic RNG satisfying the vendored [`rand`] traits. The word
//! streams are high-quality and reproducible across runs and platforms, but
//! are **not** bit-compatible with the upstream `rand_chacha` crate — every
//! consumer in this workspace only relies on determinism and statistical
//! quality, never on specific stream values.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round applied to four state words.
#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Generates one 64-byte ChaCha block with the given round count.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32, out: &mut [u32; 16]) {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..rounds / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (out_word, (mixed, start)) in out.iter_mut().zip(state.iter().zip(initial.iter())) {
        *out_word = mixed.wrapping_add(*start);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            /// Next unread word index in `buffer`; 16 means "refill".
            index: usize,
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl $name {
            #[inline]
            fn refill(&mut self) {
                chacha_block(&self.key, self.counter, $rounds, &mut self.buffer);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }

            /// Repositions the stream so the next [`RngCore::next_u32`] call
            /// returns the `pos`-th 32-bit word of the keystream (counting
            /// from zero at construction).
            ///
            /// ChaCha is a block cipher in counter mode, so seeking costs one
            /// block computation regardless of distance. After
            /// `set_word_pos(p)` the generator produces exactly the words a
            /// fresh generator would produce after discarding `p` words —
            /// this is what lets consumers replay the middle of a shared
            /// stream (e.g. regenerate one node's routing-table draws without
            /// generating every predecessor's).
            pub fn set_word_pos(&mut self, pos: u64) {
                self.counter = pos / 16;
                self.refill();
                self.index = (pos % 16) as usize;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32();
                let hi = self.next_u32();
                u64::from(lo) | (u64::from(hi) << 32)
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(4) {
                    let bytes = self.next_u32().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds: the fast simulation RNG."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn ietf_test_vector_first_block() {
        // RFC 7539 §2.3.2 uses a 32-bit counter + 96-bit nonce layout; ours is
        // the original 64-bit counter + 64-bit zero nonce, so we only check
        // determinism and key sensitivity rather than the RFC keystream.
        let a = ChaCha20Rng::from_seed([7; 32]).next_u64();
        let b = ChaCha20Rng::from_seed([7; 32]).next_u64();
        let c = ChaCha20Rng::from_seed([8; 32]).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn set_word_pos_replays_the_stream_from_any_offset() {
        let mut reference = ChaCha8Rng::seed_from_u64(42);
        let words: Vec<u32> = (0..200).map(|_| reference.next_u32()).collect();
        let mut seeking = ChaCha8Rng::seed_from_u64(42);
        // Probe offsets inside, at, and across block boundaries.
        for &pos in &[0u64, 1, 15, 16, 17, 31, 32, 100, 160, 199] {
            seeking.set_word_pos(pos);
            assert_eq!(
                seeking.next_u32(),
                words[pos as usize],
                "word at offset {pos}"
            );
        }
        // Seeking backwards works too, and the stream continues naturally.
        seeking.set_word_pos(10);
        let tail: Vec<u32> = (0..30).map(|_| seeking.next_u32()).collect();
        assert_eq!(&tail[..], &words[10..40]);
    }

    #[test]
    fn blocks_differ_across_counter_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
