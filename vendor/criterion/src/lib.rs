//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of criterion's surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock harness instead of criterion's statistical
//! machinery. Results print as `name  ...  <median> ns/iter (n samples)`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's traditional name.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_COUNT: usize = 10;
/// Target wall-clock spent per benchmark across all samples.
const TARGET_TOTAL: Duration = Duration::from_millis(300);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: DEFAULT_SAMPLE_COUNT,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_count, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_count: self.sample_count,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples collected per benchmark.
    pub fn sample_size(&mut self, count: usize) -> &mut Self {
        self.sample_count = count.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_count, &mut routine);
        self
    }

    /// Runs a benchmark that borrows a setup input.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut routine: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_count, &mut |b: &mut Bencher| {
            routine(b, input)
        });
        self
    }

    /// Finishes the group (a no-op in the vendored harness).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id made of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Hands the routine under measurement to the timing loop.
pub struct Bencher {
    /// Iterations to run per sample, tuned by a calibration pass.
    iterations: u64,
    /// Duration of the most recent sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iterations` times.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_count: usize, routine: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: run single iterations until we know roughly how long one
    // takes, then size samples to fit the target budget.
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = TARGET_TOTAL / sample_count.max(1) as u32;
    let iterations =
        (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_count);
    for _ in 0..sample_count {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iterations as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    println!("{label:<60} {median:>14.1} ns/iter ({sample_count} samples x {iterations} iters)");
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking the listed `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut criterion = Criterion::default();
        let mut runs = 0u64;
        criterion.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_compose_ids() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("group");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(16), &16u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
