//! Offline vendored JSON text encoding for the vendored [`serde`] subset.
//!
//! Provides [`to_string`], [`to_string_pretty`], and [`from_str`] over the
//! [`serde::Value`] data model. Numbers round-trip exactly: floats are
//! written with Rust's shortest-round-trip formatting, and integers keep
//! their integer form. Non-finite floats (which JSON cannot express) are
//! written as the strings `"Infinity"`, `"-Infinity"`, and `"NaN"`, which the
//! vendored `f64` deserializer maps back.

#![forbid(unsafe_code)]

pub use serde::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Never fails for the vendored data model; returns `Result` for API
/// compatibility with upstream `serde_json`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(
        &mut out,
        &value.to_value(),
        Layout {
            indent: None,
            depth: 0,
        },
    );
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (two-space indent).
///
/// # Errors
///
/// Never fails for the vendored data model; returns `Result` for API
/// compatibility with upstream `serde_json`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(
        &mut out,
        &value.to_value(),
        Layout {
            indent: Some(2),
            depth: 0,
        },
    );
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Layout state threaded through the writer: indent step (None = compact)
/// and current nesting depth.
#[derive(Clone, Copy)]
struct Layout {
    indent: Option<usize>,
    depth: usize,
}

impl Layout {
    fn deeper(self) -> Layout {
        Layout {
            indent: self.indent,
            depth: self.depth + 1,
        }
    }

    fn break_line(self, out: &mut String, depth: usize) {
        if let Some(step) = self.indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
}

fn write_value(out: &mut String, value: &Value, layout: Layout) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_sequence(out, items, layout, '[', ']', |out, item, layout| {
            write_value(out, item, layout);
        }),
        Value::Object(entries) => {
            write_sequence(
                out,
                entries,
                layout,
                '{',
                '}',
                |out, (key, item), layout| {
                    write_string(out, key);
                    out.push(':');
                    if layout.indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, item, layout);
                },
            );
        }
    }
}

fn write_sequence<T, F>(
    out: &mut String,
    items: &[T],
    layout: Layout,
    open: char,
    close: char,
    mut write_item: F,
) where
    F: FnMut(&mut String, &T, Layout),
{
    out.push(open);
    if items.is_empty() {
        out.push(close);
        return;
    }
    for (index, item) in items.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        layout.break_line(out, layout.depth + 1);
        write_item(out, item, layout.deeper());
    }
    layout.break_line(out, layout.depth);
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` is Rust's shortest round-trip representation. Whole floats
        // format without a dot (e.g. "1"), which would parse back as an
        // integer `Value` — append `.0` so floats stay floats through a
        // round-trip.
        let start = out.len();
        let _ = write!(out, "{x}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else if x.is_nan() {
        out.push_str("\"NaN\"");
    } else if x > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, expected: u8) -> Result<(), Error> {
        let found = self.peek()?;
        if found != expected {
            return Err(Error::custom(format!(
                "expected `{}` at byte {}, found `{}`",
                expected as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: must pair with \uXXXX low.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00));
                                    out.push(
                                        char::from_u32(combined).ok_or_else(|| {
                                            Error::custom("invalid surrogate pair")
                                        })?,
                                    );
                                } else {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8).
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| Error::custom("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!(
                "expected a JSON value at byte {start}"
            )));
        }
        let is_integer = !text.contains(['.', 'e', 'E']);
        if is_integer {
            if text.starts_with('-') {
                // Parse with the sign attached so i64::MIN stays exact.
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(if n == 0 { Value::U64(0) } else { Value::I64(n) });
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "-17", "1.5", "1e-3"] {
            let value = parse_value_complete(text).unwrap();
            let back = parse_value_complete(&{
                let mut out = String::new();
                write_value(
                    &mut out,
                    &value,
                    Layout {
                        indent: None,
                        depth: 0,
                    },
                );
                out
            })
            .unwrap();
            assert_eq!(value, back, "round-tripping {text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1, 1.0 / 3.0, 89.4, f64::MIN_POSITIVE, 1e308] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn integer_extremes_round_trip() {
        for &n in &[i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            let text = to_string(&n).unwrap();
            let back: i64 = from_str(&text).unwrap();
            assert_eq!(back, n);
        }
        for &n in &[0u64, u64::MAX] {
            let text = to_string(&n).unwrap();
            let back: u64 = from_str(&text).unwrap();
            assert_eq!(back, n);
        }
    }

    #[test]
    fn non_finite_floats_round_trip_as_strings() {
        assert_eq!(to_string(&f64::NEG_INFINITY).unwrap(), "\"-Infinity\"");
        let back: f64 = from_str("\"-Infinity\"").unwrap();
        assert_eq!(back, f64::NEG_INFINITY);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nwith \"quotes\" and \\ unicode \u{1F980} control \u{01}".to_owned();
        let text = to_string(&original).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let back: String = from_str("\"\\ud83e\\udd80\"").unwrap();
        assert_eq!(back, "\u{1F980}");
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let value = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<u32>("").is_err());
    }
}
