//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! (via the sibling hand-rolled `serde_derive` proc macro) and the traits the
//! derives implement. Instead of upstream serde's visitor architecture, the
//! data model is a single JSON-shaped [`Value`] tree: [`Serialize`] renders
//! into it and [`Deserialize`] parses out of it. The sibling `serde_json`
//! crate handles the text encoding. Conventions (externally tagged enums,
//! transparent newtypes) match serde_json's defaults so documents look the
//! same as upstream's.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree — the data model both traits target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float (also used for integers too large for the other forms).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short human-readable name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Fetches a field from object entries; missing fields read as `null` so
/// `Option` fields deserialize to `None` (matching serde's behaviour).
///
/// # Errors
///
/// Never fails today; returns `Result` so derive-generated code can `?` it.
pub fn get_field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    const NULL: Value = Value::Null;
    Ok(entries
        .iter()
        .find(|(key, _)| key == name)
        .map_or(&NULL, |(_, value)| value))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::U64(n) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty)))),
                    other => Err(Error::custom(format!(
                        "expected {} got {}", stringify!($ty), other.kind()
                    ))),
                }
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::U64(n) => usize::try_from(*n)
                .map_err(|_| Error::custom(format!("{n} out of range for usize"))),
            other => Err(Error::custom(format!(
                "expected usize got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let wide = i64::from(*self);
                if wide >= 0 { Value::U64(wide as u64) } else { Value::I64(wide) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($ty))))?,
                    Value::I64(n) => *n,
                    other => {
                        return Err(Error::custom(format!(
                            "expected {} got {}", stringify!($ty), other.kind()
                        )))
                    }
                };
                <$ty>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($ty))))
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        i64::from_value(value).map(|n| n as isize)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Non-finite floats are serialized as strings (see serde_json).
            Value::Str(s) => match s.as_str() {
                "Infinity" => Ok(f64::INFINITY),
                "-Infinity" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                _ => Err(Error::custom(format!("expected f64 got string {s:?}"))),
            },
            other => Err(Error::custom(format!("expected f64 got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object got {}",
                other.kind()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic run to run.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!("expected null got {}", other.kind()))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $index:tt),+);)+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($index),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected {expected}-tuple, got {} elements", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$index])?,)+))
                    }
                    other => Err(Error::custom(format!("expected array got {}", other.kind()))),
                }
            }
        }
    )+};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trips_through_null() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
    }

    #[test]
    fn missing_fields_read_as_null() {
        let entries = vec![("a".to_owned(), Value::U64(1))];
        assert_eq!(get_field(&entries, "a").unwrap(), &Value::U64(1));
        assert_eq!(get_field(&entries, "b").unwrap(), &Value::Null);
    }

    #[test]
    fn numbers_cross_deserialize() {
        assert_eq!(f64::from_value(&Value::U64(4)).unwrap(), 4.0);
        assert_eq!(u32::from_value(&Value::U64(4)).unwrap(), 4);
        assert!(u32::from_value(&Value::U64(u64::MAX)).is_err());
        assert_eq!(i32::from_value(&Value::I64(-4)).unwrap(), -4);
    }

    #[test]
    fn vectors_and_tuples_round_trip() {
        let xs = vec![(1u32, 2.5f64), (3, 4.5)];
        let value = xs.to_value();
        let back: Vec<(u32, f64)> = Deserialize::from_value(&value).unwrap();
        assert_eq!(back, xs);
    }
}
