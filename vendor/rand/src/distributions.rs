//! The standard distribution and uniform range sampling.

use crate::{Rng, RngCore};

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Samples one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the full domain for
/// integers, uniform over `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)` using rejection sampling.
        fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples uniformly from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Ranges that can drive [`SampleUniform`] sampling.
    pub trait SampleRange<T> {
        /// Samples a single value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(low, high, rng)
        }
    }

    /// Samples uniformly from `[0, span)` without modulo bias via Lemire's
    /// multiply-shift rejection method.
    fn sample_u64_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
        debug_assert!(span > 0);
        // Rejection zone: the lowest `2^64 mod span` values of the multiply's
        // low word would over-represent small outputs.
        let threshold = span.wrapping_neg() % span;
        loop {
            let wide = u128::from(rng.next_u64()) * u128::from(span);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    macro_rules! impl_uniform_int {
        ($($ty:ty),+) => {$(
            impl SampleUniform for $ty {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let span = (high as u64).wrapping_sub(low as u64);
                    low.wrapping_add(sample_u64_below(span, rng) as $ty)
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain.
                        return rng.next_u64() as $ty;
                    }
                    low.wrapping_add(sample_u64_below(span, rng) as $ty)
                }
            }
        )+};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize);

    macro_rules! impl_uniform_float {
        ($($ty:ty),+) => {$(
            impl SampleUniform for $ty {
                fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    // Rejection-sample the rare case where rounding pushes
                    // `low + unit * (high - low)` up to the excluded endpoint.
                    // Terminates with probability 1: `unit` can be zero, and
                    // `low + 0 * span == low < high`.
                    loop {
                        let unit = (rng.next_u64() >> 11) as $ty * (1.0 / (1u64 << 53) as $ty);
                        let sample = low + unit * (high - low);
                        if sample < high {
                            return sample;
                        }
                    }
                }
                fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let unit = (rng.next_u64() >> 11) as $ty * (1.0 / ((1u64 << 53) - 1) as $ty);
                    low + unit * (high - low)
                }
            }
        )+};
    }

    impl_uniform_float!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = Step(42);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[(8u64..16).sample_single(&mut rng) as usize - 8] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all values of a small range appear"
        );
    }

    #[test]
    fn float_range_stays_half_open() {
        let mut rng = Step(3);
        for _ in 0..10_000 {
            let x = (0.25f64..0.75).sample_single(&mut rng);
            assert!((0.25..0.75).contains(&x));
        }
    }
}
