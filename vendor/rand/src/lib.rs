//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the slice of `rand` the workspace uses:
//! [`RngCore`], the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! and [`SeedableRng`] with the SplitMix64-based `seed_from_u64` seeding
//! scheme. The API shapes mirror upstream `rand` 0.8 so the workspace can be
//! pointed back at the real crate without source changes.

#![forbid(unsafe_code)]

pub mod distributions;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// A low-level source of random 32/64-bit words and bytes.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing helpers layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // `gen::<f64>()` lies in [0, 1), so p = 1.0 always succeeds and
        // p = 0.0 never does.
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let value = splitmix64(&mut x);
            for (dest, byte) in chunk.iter_mut().zip(value.to_le_bytes()) {
                *dest = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (advances `x`, returns the output).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_honours_extremes() {
        let mut rng = Counter(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Counter(3);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x = sample(dynamic);
        assert!((0.0..1.0).contains(&x));
    }
}
