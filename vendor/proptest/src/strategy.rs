//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// collection (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Chooses uniformly among several strategies generating the same type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $index:tt),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..1000 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0.0f64..0.5).generate(&mut rng);
            assert!((0.0..0.5).contains(&y));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let strategy = prop_oneof![Just(1u32), Just(2u32), (10u32..12).prop_map(|x| x)];
        let mut rng = TestRng::for_test("oneof");
        let mut seen = [false; 4];
        for _ in 0..200 {
            match strategy.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                10 => seen[2] = true,
                11 => seen[3] = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::for_test("tuples");
        let (a, b) = (1u32..3, 0.0f64..1.0).generate(&mut rng);
        assert!((1..3).contains(&a));
        assert!((0.0..1.0).contains(&b));
    }
}
