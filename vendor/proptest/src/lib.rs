//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! slice of proptest the workspace's property tests use: the
//! [`strategy::Strategy`] trait over numeric ranges, tuples,
//! [`strategy::Just`], `prop_map`, and
//! [`prop_oneof!`]; the [`proptest!`] test macro with
//! `#![proptest_config(...)]`; and the `prop_assert*`/`prop_assume!` family.
//! Unlike upstream there is no shrinking: a failing case panics immediately
//! with the generated inputs, which are reproducible because the generator
//! seed is derived deterministically from the test name.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// The items property tests conventionally glob-import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// Each function's arguments are drawn from the given strategies; the body
/// runs once per generated case and may bail out early with the
/// `prop_assert*` macros or `prop_assume!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr); ) => {};
    (($config:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let strategy = ($($strategy,)+);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(256);
            while accepted < config.cases {
                assert!(
                    attempts < max_attempts,
                    "proptest {}: gave up after {} attempts ({} accepted; too many prop_assume rejections?)",
                    stringify!($name), attempts, accepted,
                );
                attempts += 1;
                let ($($arg,)+) = $crate::strategy::Strategy::generate(&strategy, &mut rng);
                let case_description = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest {} failed: {}\ninputs:\n{}",
                            stringify!($name), message, case_description,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($config); $($rest)* }
    };
}

/// Fails the current case unless `condition` holds.
#[macro_export]
macro_rules! prop_assert {
    ($condition:expr) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($condition)),
            ));
        }
    };
    ($condition:expr, $($format:tt)+) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($format)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($format:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($format)+),
                left,
                right,
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discards the current case (without failing) unless `condition` holds.
#[macro_export]
macro_rules! prop_assume {
    ($condition:expr) => {
        if !($condition) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($condition),
            ));
        }
    };
}

/// Chooses uniformly between the listed strategies (all must generate the
/// same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
