//! Test-case configuration, error signalling, and the deterministic RNG.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Controls how many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases — unless the `PROPTEST_CASES`
    /// environment variable is set to a valid count, which overrides the
    /// requested number. CI raises the variable to run every property suite
    /// harder without each suite re-implementing the plumbing; local runs
    /// keep the fast in-code defaults.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// The `PROPTEST_CASES` override, if set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the property does not hold.
    Fail(String),
    /// The case was discarded by `prop_assume!` and should not count.
    Reject(&'static str),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection recording the unmet assumption.
    #[must_use]
    pub fn reject(assumption: &'static str) -> Self {
        TestCaseError::Reject(assumption)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "test case failed: {message}"),
            TestCaseError::Reject(assumption) => {
                write!(f, "test case rejected: assumption `{assumption}` not met")
            }
        }
    }
}

/// The RNG driving strategy generation.
///
/// Seeded from the test name, so every run of a given test sees the same
/// sequence of cases (there is no shrinking; reproducibility is the
/// debugging story).
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A deterministic RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name picks the stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
