//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset.
//!
//! The build environment has no crates.io access, so there is no `syn` or
//! `quote`; the item definition is parsed directly from the
//! [`proc_macro::TokenStream`] and the impls are generated as strings. The
//! supported shapes are exactly what this workspace derives on: non-generic
//! structs (named, tuple, unit) and enums whose variants are unit, tuple, or
//! struct-like. `#[serde(...)]` helper attributes are accepted and ignored,
//! except that single-field tuple structs are always serialized transparently
//! (so `#[serde(transparent)]` newtypes behave as annotated).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    generate_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    generate_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    skip_attributes_and_visibility(&mut tokens);

    let keyword = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct {
                    name,
                    fields: parse_named_fields(group.stream()),
                }
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(group.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(group.stream()),
            },
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("expected `struct` or `enum`, found `{other}`"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips outer attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(crate)`, ...).
fn skip_attributes_and_visibility(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                tokens.next();
            }
            Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(ident)) => fields.push(ident.to_string()),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        }
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        skip_type_until_comma(&mut tokens);
    }
    fields
}

/// Consumes type tokens up to (and including) the next top-level comma,
/// treating `<`/`>` pairs as nesting so `HashMap<K, V>` stays one type.
fn skip_type_until_comma(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.peek() {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut arity = 0usize;
    loop {
        skip_attributes_and_visibility(&mut tokens);
        if tokens.peek().is_none() {
            return arity;
        }
        arity += 1;
        skip_type_until_comma(&mut tokens);
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes_and_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(group.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream());
                tokens.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume a trailing comma (and reject explicit discriminants, which
        // this workspace never combines with serde derives).
        match tokens.next() {
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn generate_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "::serde::Value::Object(::std::vec![{}])",
                    entries.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            // Single-field tuple structs serialize transparently, matching
            // serde's newtype-struct convention in serde_json.
            (name, "::serde::Serialize::to_value(&self.0)".to_owned())
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", ")),
            )
        }
        Shape::UnitStruct { name } => (name, "::serde::Value::Null".to_owned()),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| serialize_variant_arm(name, variant))
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{v}(field0) => ::serde::Value::Object(::std::vec![(\
                 ::std::string::String::from(\"{v}\"), \
                 ::serde::Serialize::to_value(field0))]),"
        ),
        VariantKind::Tuple(arity) => {
            let bindings: Vec<String> = (0..*arity).map(|i| format!("field{i}")).collect();
            let items: Vec<String> = bindings
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Array(::std::vec![{}]))]),",
                bindings.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from(\"{v}\"), \
                     ::serde::Value::Object(::std::vec![{}]))]),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

fn generate_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(entries, \"{f}\")?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "let entries = value.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let items = match value {{\n\
                         ::serde::Value::Array(items) if items.len() == {arity} => items,\n\
                         other => return ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"expected {arity}-element array for {name}, got {{}}\", \
                             other.kind()))),\n\
                     }};\n\
                     ::std::result::Result::Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Shape::UnitStruct { name } => (
            name,
            format!(
                "match value {{\n\
                     ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected null for {name}, got {{}}\", other.kind()))),\n\
                 }}"
            ),
        ),
        Shape::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|variant| {
            let v = &variant.name;
            match &variant.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                )),
                VariantKind::Tuple(arity) => {
                    let inits: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{v}\" => match payload {{\n\
                             ::serde::Value::Array(items) if items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}::{v}({inits})),\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected {arity}-element array for {name}::{v}\")),\n\
                         }},",
                        inits = inits.join(", ")
                    ))
                }
                VariantKind::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::get_field(inner, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{v}\" => {{\n\
                             let inner = payload.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                         }},",
                        inits = inits.join(", ")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match value {{\n\
             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {units}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown variant {{other}} of {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {payloads}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown variant {{other}} of {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {name} variant, got {{}}\", other.kind()))),\n\
         }}",
        units = unit_arms.join("\n"),
        payloads = payload_arms.join("\n")
    )
}
